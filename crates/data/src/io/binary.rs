//! Compact binary community format (little-endian, version-tagged).
//!
//! Layout:
//!
//! ```text
//! magic    "CSJB"            4 bytes
//! version  u16               currently 2
//! name_len u16, name bytes   UTF-8
//! d        u32
//! n        u64
//! ids      n * u64
//! data     n * d * u32
//! crc32    u32               version >= 2: CRC32 of every byte above
//! ```
//!
//! At the paper's full scale (7.8M users x 27 dims) this is ~0.9 GB —
//! ~4x smaller than CSV and loadable with two bulk reads.
//!
//! Version 2 appends a CRC32 (IEEE) footer over the entire record —
//! magic through data — so silent on-disk damage surfaces as a typed
//! [`IoError::ChecksumMismatch`] instead of a plausible-looking corpus.
//! Version 1 files (no footer) still load; writers always emit v2.

use std::io::{BufReader, BufWriter, Read, Write};

use bytes::{Buf, BufMut, BytesMut};
use csj_core::checksum::Crc32;
use csj_core::Community;

use super::{IoError, QuarantinedRecord, RecordLocation};

const MAGIC: &[u8; 4] = b"CSJB";
const VERSION: u16 = 2;
/// Version 1 lacked the CRC32 footer; still accepted on read.
const VERSION_NO_FOOTER: u16 = 1;

/// Write a community in binary form (version 2: CRC32 footer).
pub fn write_binary<W: Write>(community: &Community, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let mut crc = Crc32::new();
    let mut header = BytesMut::with_capacity(64);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    let name = community.name().as_bytes();
    if name.len() > u16::MAX as usize {
        return Err(IoError::Format("community name too long".into()));
    }
    header.put_u16_le(name.len() as u16);
    header.put_slice(name);
    header.put_u32_le(community.d() as u32);
    header.put_u64_le(community.len() as u64);
    crc.update(&header);
    w.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(community.len() * 8);
    for &id in community.user_ids() {
        buf.put_u64_le(id);
    }
    crc.update(&buf);
    w.write_all(&buf)?;
    buf.clear();
    buf.reserve(community.raw_data().len() * 4);
    for &v in community.raw_data() {
        buf.put_u32_le(v);
    }
    crc.update(&buf);
    w.write_all(&buf)?;
    w.write_all(&crc.finish().to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read a community from binary form.
pub fn read_binary<R: Read>(reader: R) -> Result<Community, IoError> {
    let mut r = BufReader::new(reader);
    let community = read_binary_embedded(&mut r)?;
    reject_trailing(&mut r)?;
    Ok(community)
}

/// Read a community from binary form in *quarantine* mode: records the
/// format can represent but the corpus cannot accept — duplicate user
/// ids — are skipped and reported (0-based record index) instead of
/// silently kept. Structural problems (bad magic, truncation, bad
/// header fields) still abort the load.
pub fn read_binary_quarantine<R: Read>(
    reader: R,
) -> Result<(Community, Vec<QuarantinedRecord>), IoError> {
    let mut r = BufReader::new(reader);
    let out = read_binary_inner(&mut r, true)?;
    reject_trailing(&mut r)?;
    Ok(out)
}

/// Trailing garbage is a format violation for a standalone file.
fn reject_trailing<R: Read>(r: &mut R) -> Result<(), IoError> {
    let mut trailing = [0u8; 1];
    match r.read(&mut trailing)? {
        0 => Ok(()),
        _ => Err(IoError::Format(
            "trailing bytes after community data".into(),
        )),
    }
}

/// Read one embedded community record, leaving the reader positioned
/// right after it (used by composite formats such as `.csjp`).
pub(crate) fn read_binary_embedded<R: Read>(r: &mut R) -> Result<Community, IoError> {
    Ok(read_binary_inner(r, false)?.0)
}

fn read_binary_inner<R: Read>(
    r: &mut R,
    quarantine: bool,
) -> Result<(Community, Vec<QuarantinedRecord>), IoError> {
    // Everything up to the footer is read through the hashing wrapper so
    // the v2 checksum covers exactly the bytes the writer hashed.
    let mut hr = HashingReader {
        inner: r,
        crc: Crc32::new(),
    };
    let mut magic = [0u8; 4];
    hr.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic (not a CSJB file)".into()));
    }
    let version = read_u16(&mut hr)?;
    if version != VERSION && version != VERSION_NO_FOOTER {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let name_len = read_u16(&mut hr)? as usize;
    let mut name_bytes = vec![0u8; name_len];
    hr.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes)
        .map_err(|e| IoError::Format(format!("community name not UTF-8: {e}")))?;
    let d = read_u32(&mut hr)? as usize;
    if d == 0 {
        return Err(IoError::Format("d must be positive".into()));
    }
    let n = read_u64(&mut hr)? as usize;
    let data_len = n
        .checked_mul(d)
        .ok_or_else(|| IoError::Format("n * d overflows".into()))?;
    data_len
        .checked_mul(4)
        .and_then(|v| v.checked_add(n.checked_mul(8)?))
        .ok_or_else(|| IoError::Format("payload size overflows".into()))?;

    // A corrupted header can claim an absurd n; read in bounded chunks so
    // a short file errors out instead of attempting a giant allocation.
    let id_bytes = read_exact_chunked(&mut hr, n * 8)?;
    let mut ids = Vec::with_capacity(n);
    {
        let mut cursor = &id_bytes[..];
        for _ in 0..n {
            ids.push(cursor.get_u64_le());
        }
    }
    let data_bytes = read_exact_chunked(&mut hr, data_len * 4)?;
    if version >= VERSION {
        // Footer sits outside the hashed region: read it from the
        // underlying reader.
        let got = hr.crc.finish();
        let expected = read_u32(hr.inner)?;
        if expected != got {
            return Err(IoError::ChecksumMismatch { expected, got });
        }
    }
    let mut community = Community::with_capacity(name, d, n);
    let mut quarantined = Vec::new();
    {
        // Linear-time duplicate detection for quarantine mode (the
        // strict path keeps the historical keep-every-record behavior).
        let mut seen = std::collections::HashSet::new();
        let mut cursor = &data_bytes[..];
        let mut row = vec![0u32; d];
        for (index, &id) in ids.iter().enumerate() {
            for v in row.iter_mut() {
                *v = cursor.get_u32_le();
            }
            if quarantine && !seen.insert(id) {
                quarantined.push(QuarantinedRecord {
                    location: RecordLocation::Record(index as u64),
                    reason: format!("duplicate user id {id}"),
                });
                continue;
            }
            community.push(id, &row).map_err(|e| IoError::BadRecord {
                location: RecordLocation::Record(index as u64),
                reason: e.to_string(),
            })?;
        }
    }
    Ok((community, quarantined))
}

/// A reader that folds every byte it yields into a running CRC32, so
/// the footer check covers exactly what was parsed.
struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// Read exactly `len` bytes, growing the buffer in bounded chunks so a
/// lying header cannot trigger a huge upfront allocation.
pub(crate) fn read_exact_chunked<R: Read>(r: &mut R, len: usize) -> Result<Vec<u8>, IoError> {
    const CHUNK: usize = 1 << 20; // 1 MiB
    let mut out = Vec::with_capacity(len.min(CHUNK));
    let mut remaining = len;
    let mut buf = vec![0u8; CHUNK.min(len.max(1))];
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        out.extend_from_slice(&buf[..take]);
        remaining -= take;
    }
    Ok(out)
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, IoError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Community {
        let mut c = Community::new("Adidas", 4);
        c.push(u64::MAX, &[u32::MAX, 0, 1, 2]).unwrap();
        c.push(0, &[9, 9, 9, 9]).unwrap();
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        write_binary(&c, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_empty() {
        let c = Community::new("Empty", 7);
        let mut buf = Vec::new();
        write_binary(&c, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), c);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, IoError::Format(msg) if msg.contains("magic")));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.push(0);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, IoError::Format(msg) if msg.contains("trailing")));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn detects_payload_corruption() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        // Flip one bit in the data region (past the header, before the
        // footer) — must surface as a typed checksum mismatch.
        let i = buf.len() - 10;
        buf[i] ^= 0x40;
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, IoError::ChecksumMismatch { .. }), "got {err}");
        // Quarantine mode aborts too: corruption is container-level.
        let err = read_binary_quarantine(&buf[..]).unwrap_err();
        assert!(matches!(err, IoError::ChecksumMismatch { .. }));
    }

    #[test]
    fn detects_footer_corruption() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            read_binary(&buf[..]).unwrap_err(),
            IoError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn accepts_legacy_v1_without_footer() {
        let c = sample();
        let mut buf = Vec::new();
        write_binary(&c, &mut buf).unwrap();
        // Rewrite as a v1 file: patch the version, drop the footer.
        buf[4] = 1;
        buf.truncate(buf.len() - 4);
        assert_eq!(read_binary(&buf[..]).unwrap(), c);
    }

    #[test]
    fn truncated_footer_is_an_error() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 4); // v2 with footer sheared off
        assert!(matches!(read_binary(&buf[..]).unwrap_err(), IoError::Io(_)));
    }

    #[test]
    fn quarantine_skips_duplicate_ids() {
        let mut c = Community::new("Dup", 2);
        c.push(1, &[1, 1]).unwrap();
        c.push(2, &[2, 2]).unwrap();
        c.push(1, &[9, 9]).unwrap(); // duplicate of record 0
        let mut buf = Vec::new();
        write_binary(&c, &mut buf).unwrap();
        // Strict read keeps all three (historical behavior)…
        assert_eq!(read_binary(&buf[..]).unwrap().len(), 3);
        // …quarantine keeps the first occurrence and reports the dup.
        let (clean, quarantined) = read_binary_quarantine(&buf[..]).unwrap();
        assert_eq!(clean.len(), 2);
        assert_eq!(clean.user_ids(), &[1, 2]);
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].location, RecordLocation::Record(2));
        assert!(quarantined[0].reason.contains("duplicate user id 1"));
    }

    #[test]
    fn quarantine_still_rejects_structural_corruption() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary_quarantine(&buf[..]).is_err());
    }

    #[test]
    fn binary_is_smaller_than_csv() {
        let mut c = Community::new("big", 27);
        let row: Vec<u32> = (0..27).map(|i| i * 1000).collect();
        for i in 0..500u64 {
            c.push(i, &row).unwrap();
        }
        let mut bin = Vec::new();
        write_binary(&c, &mut bin).unwrap();
        let mut csv = Vec::new();
        super::super::write_csv(&c, &mut csv).unwrap();
        assert!(bin.len() < csv.len());
    }
}
