//! CSV community format.
//!
//! ```text
//! # community: <name>
//! # d: <dimensions>
//! user_id,c0,c1,...,c{d-1}
//! 17,0,3,0,...
//! ```
//!
//! Human-inspectable; intended for small exports and interoperability.
//! Use the binary format for large corpora.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use csj_core::Community;

use super::IoError;

/// Write a community in CSV form.
pub fn write_csv<W: Write>(community: &Community, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# community: {}", community.name())?;
    writeln!(w, "# d: {}", community.d())?;
    write!(w, "user_id")?;
    for i in 0..community.d() {
        write!(w, ",c{i}")?;
    }
    writeln!(w)?;
    for (id, row) in community.iter() {
        write!(w, "{id}")?;
        for &v in row {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a community from CSV form.
pub fn read_csv<R: Read>(reader: R) -> Result<Community, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let name_line = lines
        .next()
        .ok_or_else(|| IoError::Format("missing community header".into()))??;
    let name = name_line
        .strip_prefix("# community: ")
        .ok_or_else(|| IoError::Format("first line must be '# community: <name>'".into()))?
        .to_string();
    let d_line = lines
        .next()
        .ok_or_else(|| IoError::Format("missing d header".into()))??;
    let d: usize = d_line
        .strip_prefix("# d: ")
        .ok_or_else(|| IoError::Format("second line must be '# d: <n>'".into()))?
        .trim()
        .parse()
        .map_err(|e| IoError::Format(format!("bad d value: {e}")))?;
    if d == 0 {
        return Err(IoError::Format("d must be positive".into()));
    }
    // Column header line.
    let header = lines
        .next()
        .ok_or_else(|| IoError::Format("missing column header".into()))??;
    if !header.starts_with("user_id") {
        return Err(IoError::Format(
            "third line must be the column header".into(),
        ));
    }

    let mut community = Community::new(name, d);
    let mut row = Vec::with_capacity(d);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let id: u64 = fields
            .next()
            .ok_or_else(|| IoError::Format(format!("line {}: empty", lineno + 4)))?
            .trim()
            .parse()
            .map_err(|e| IoError::Format(format!("line {}: bad user id: {e}", lineno + 4)))?;
        row.clear();
        for f in fields {
            let v: u32 = f
                .trim()
                .parse()
                .map_err(|e| IoError::Format(format!("line {}: bad counter: {e}", lineno + 4)))?;
            row.push(v);
        }
        if row.len() != d {
            return Err(IoError::Format(format!(
                "line {}: expected {d} counters, got {}",
                lineno + 4,
                row.len()
            )));
        }
        community
            .push(id, &row)
            .map_err(|e| IoError::Format(e.to_string()))?;
    }
    Ok(community)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Community {
        let mut c = Community::new("Nike", 3);
        c.push(10, &[1, 0, 5]).unwrap();
        c.push(20, &[0, 2, 0]).unwrap();
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        write_csv(&c, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn format_is_readable() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# community: Nike"));
        assert!(text.contains("user_id,c0,c1,c2"));
        assert!(text.contains("10,1,0,5"));
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "# community: X\n# d: 3\nuser_id,c0,c1,c2\n1,2,3\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn rejects_missing_headers() {
        assert!(read_csv("nope".as_bytes()).is_err());
        assert!(read_csv("# community: X\n# dee: 3\n".as_bytes()).is_err());
        assert!(read_csv("# community: X\n# d: 0\nuser_id\n".as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let text = "# community: X\n# d: 1\nuser_id,c0\n1,5\n\n2,6\n";
        let c = read_csv(text.as_bytes()).unwrap();
        assert_eq!(c.len(), 2);
    }
}
