//! CSV community format.
//!
//! ```text
//! # community: <name>
//! # d: <dimensions>
//! user_id,c0,c1,...,c{d-1}
//! 17,0,3,0,...
//! ```
//!
//! Human-inspectable; intended for small exports and interoperability.
//! Use the binary format for large corpora.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use csj_core::Community;

use super::{IoError, QuarantinedRecord, RecordLocation};

/// Write a community in CSV form.
pub fn write_csv<W: Write>(community: &Community, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# community: {}", community.name())?;
    writeln!(w, "# d: {}", community.d())?;
    write!(w, "user_id")?;
    for i in 0..community.d() {
        write!(w, ",c{i}")?;
    }
    writeln!(w)?;
    for (id, row) in community.iter() {
        write!(w, "{id}")?;
        for &v in row {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a community from CSV form. Strict: the first malformed row
/// aborts the load with [`IoError::BadRecord`] naming its line.
pub fn read_csv<R: Read>(reader: R) -> Result<Community, IoError> {
    let (community, _) = read_csv_inner(reader, false)?;
    Ok(community)
}

/// Read a community from CSV form in *quarantine* mode: malformed rows
/// are skipped and reported instead of aborting the load. Container-
/// level problems (missing/bad headers, I/O failures) still error —
/// quarantine only forgives individual records.
pub fn read_csv_quarantine<R: Read>(
    reader: R,
) -> Result<(Community, Vec<QuarantinedRecord>), IoError> {
    read_csv_inner(reader, true)
}

/// Parse one data row (`user_id,c0,...`) into `(id, counters)`;
/// `lineno` is the 1-based line number used in error locations.
fn parse_csv_row(line: &str, d: usize, lineno: u64, row: &mut Vec<u32>) -> Result<u64, IoError> {
    let bad = |reason: String| IoError::BadRecord {
        location: RecordLocation::Line(lineno),
        reason,
    };
    let mut fields = line.split(',');
    let id: u64 = fields
        .next()
        .ok_or_else(|| bad("empty row".into()))?
        .trim()
        .parse()
        .map_err(|e| bad(format!("bad user id: {e}")))?;
    row.clear();
    for f in fields {
        let v: u32 = f
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad counter: {e}")))?;
        row.push(v);
    }
    if row.len() != d {
        return Err(bad(format!("expected {d} counters, got {}", row.len())));
    }
    Ok(id)
}

fn read_csv_inner<R: Read>(
    reader: R,
    quarantine: bool,
) -> Result<(Community, Vec<QuarantinedRecord>), IoError> {
    let mut lines = BufReader::new(reader).lines();
    let name_line = lines
        .next()
        .ok_or_else(|| IoError::Format("missing community header".into()))??;
    let name = name_line
        .strip_prefix("# community: ")
        .ok_or_else(|| IoError::Format("first line must be '# community: <name>'".into()))?
        .to_string();
    let d_line = lines
        .next()
        .ok_or_else(|| IoError::Format("missing d header".into()))??;
    let d: usize = d_line
        .strip_prefix("# d: ")
        .ok_or_else(|| IoError::Format("second line must be '# d: <n>'".into()))?
        .trim()
        .parse()
        .map_err(|e| IoError::Format(format!("bad d value: {e}")))?;
    if d == 0 {
        return Err(IoError::Format("d must be positive".into()));
    }
    // Column header line.
    let header = lines
        .next()
        .ok_or_else(|| IoError::Format("missing column header".into()))??;
    if !header.starts_with("user_id") {
        return Err(IoError::Format(
            "third line must be the column header".into(),
        ));
    }

    let mut community = Community::new(name, d);
    let mut quarantined = Vec::new();
    let mut row = Vec::with_capacity(d);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = lineno as u64 + 4; // 3 header lines, 1-based
        let pushed = parse_csv_row(&line, d, lineno, &mut row).and_then(|id| {
            community.push(id, &row).map_err(|e| IoError::BadRecord {
                location: RecordLocation::Line(lineno),
                reason: e.to_string(),
            })
        });
        match pushed {
            Ok(()) => {}
            Err(e) if quarantine => {
                quarantined.push(e.as_quarantined().expect("row errors are BadRecord"));
            }
            Err(e) => return Err(e),
        }
    }
    Ok((community, quarantined))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Community {
        let mut c = Community::new("Nike", 3);
        c.push(10, &[1, 0, 5]).unwrap();
        c.push(20, &[0, 2, 0]).unwrap();
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        write_csv(&c, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn format_is_readable() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# community: Nike"));
        assert!(text.contains("user_id,c0,c1,c2"));
        assert!(text.contains("10,1,0,5"));
    }

    #[test]
    fn rejects_ragged_rows_with_line_number() {
        let text = "# community: X\n# d: 3\nuser_id,c0,c1,c2\n1,2,3\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::BadRecord {
                    location: RecordLocation::Line(4),
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn quarantine_skips_bad_rows_and_reports_them() {
        let text = "# community: X\n# d: 2\nuser_id,c0,c1\n\
                    1,2,3\nbogus,2,3\n2,9\n3,4,5\n4,-1,0\n";
        let (c, quarantined) = read_csv_quarantine(text.as_bytes()).unwrap();
        assert_eq!(c.len(), 2, "rows 1 and 3 survive");
        assert_eq!(c.user_ids(), &[1, 3]);
        assert_eq!(quarantined.len(), 3);
        assert_eq!(quarantined[0].location, RecordLocation::Line(5));
        assert!(quarantined[0].reason.contains("bad user id"));
        assert_eq!(quarantined[1].location, RecordLocation::Line(6));
        assert!(quarantined[1].reason.contains("expected 2 counters"));
        assert_eq!(quarantined[2].location, RecordLocation::Line(8));
        assert!(quarantined[2].reason.contains("bad counter"));
        assert!(quarantined[2].to_string().starts_with("line 8: "));
    }

    #[test]
    fn quarantine_still_rejects_broken_headers() {
        assert!(read_csv_quarantine("# community: X\n# dee: 3\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_missing_headers() {
        assert!(read_csv("nope".as_bytes()).is_err());
        assert!(read_csv("# community: X\n# dee: 3\n".as_bytes()).is_err());
        assert!(read_csv("# community: X\n# d: 0\nuser_id\n".as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let text = "# community: X\n# d: 1\nuser_id,c0\n1,5\n\n2,6\n";
        let c = read_csv(text.as_bytes()).unwrap();
        assert_eq!(c.len(), 2);
    }
}
