//! The 27 VK content categories (the dimensions of every user vector).

/// One of the 27 VK categories; `Category as usize` is the vector
/// dimension it occupies (`d = 27`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Category {
    Entertainment,
    Hobbies,
    RelationshipFamily,
    BeautyHealth,
    Media,
    SocialPublic,
    Sport,
    Internet,
    Education,
    Celebrity,
    Animals,
    Music,
    CultureArt,
    FoodRecipes,
    TourismLeisure,
    AutoMotor,
    ProductsStores,
    HomeRenovation,
    CitiesCountries,
    ProfessionalServices,
    Medicine,
    FinanceInsurance,
    Restaurants,
    JobSearch,
    TransportationServices,
    ConsumerServices,
    CommunicationServices,
}

/// Number of categories / vector dimensions.
pub const NUM_CATEGORIES: usize = 27;

impl Category {
    /// All categories, in dimension order.
    pub const ALL: [Category; NUM_CATEGORIES] = [
        Category::Entertainment,
        Category::Hobbies,
        Category::RelationshipFamily,
        Category::BeautyHealth,
        Category::Media,
        Category::SocialPublic,
        Category::Sport,
        Category::Internet,
        Category::Education,
        Category::Celebrity,
        Category::Animals,
        Category::Music,
        Category::CultureArt,
        Category::FoodRecipes,
        Category::TourismLeisure,
        Category::AutoMotor,
        Category::ProductsStores,
        Category::HomeRenovation,
        Category::CitiesCountries,
        Category::ProfessionalServices,
        Category::Medicine,
        Category::FinanceInsurance,
        Category::Restaurants,
        Category::JobSearch,
        Category::TransportationServices,
        Category::ConsumerServices,
        Category::CommunicationServices,
    ];

    /// The vector dimension this category occupies.
    pub fn dim(self) -> usize {
        self as usize
    }

    /// The category occupying dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= 27`.
    pub fn from_dim(dim: usize) -> Category {
        Category::ALL[dim]
    }

    /// The paper's name for the category (Table 1 spelling).
    pub fn name(self) -> &'static str {
        match self {
            Category::Entertainment => "Entertainment",
            Category::Hobbies => "Hobbies",
            Category::RelationshipFamily => "Relationship_family",
            Category::BeautyHealth => "Beauty_health",
            Category::Media => "Media",
            Category::SocialPublic => "Social_public",
            Category::Sport => "Sport",
            Category::Internet => "Internet",
            Category::Education => "Education",
            Category::Celebrity => "Celebrity",
            Category::Animals => "Animals",
            Category::Music => "Music",
            Category::CultureArt => "Culture_art",
            Category::FoodRecipes => "Food_recipes",
            Category::TourismLeisure => "Tourism_leisure",
            Category::AutoMotor => "Auto_motor",
            Category::ProductsStores => "Products_stores",
            Category::HomeRenovation => "Home_renovation",
            Category::CitiesCountries => "Cities_countries",
            Category::ProfessionalServices => "Professional_Services",
            Category::Medicine => "Medicine",
            Category::FinanceInsurance => "Finance_insurance",
            Category::Restaurants => "Restaurants",
            Category::JobSearch => "Job_search",
            Category::TransportationServices => "Transportation_Services",
            Category::ConsumerServices => "Consumer_Services",
            Category::CommunicationServices => "Communication_Services",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Category {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Category::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| format!("unknown category: {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_are_dense_and_stable() {
        for (i, c) in Category::ALL.into_iter().enumerate() {
            assert_eq!(c.dim(), i);
            assert_eq!(Category::from_dim(i), c);
        }
    }

    #[test]
    fn names_roundtrip() {
        for c in Category::ALL {
            let parsed: Category = c.name().parse().unwrap();
            assert_eq!(parsed, c);
        }
        assert!("Yoga".parse::<Category>().is_err());
    }

    #[test]
    fn there_are_27() {
        assert_eq!(Category::ALL.len(), 27);
        assert_eq!(NUM_CATEGORIES, 27);
    }
}
