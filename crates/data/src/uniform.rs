//! The "Synthetic" dataset generator: per-dimension uniform counters.
//!
//! The paper fills each user vector "with values derived from a uniform
//! generator" over a large range (maximum 500 000) and joins with
//! `eps = 15000`. In that regime two *independent* uniform vectors match
//! in all 27 dimensions with probability `(2r - r^2)^27 ≈ 10^-33`
//! (`r = eps/V`), so the published 8–37 % similarities cannot come from
//! chance collisions — the corpus must contain genuinely similar
//! profiles. [`UniformGenerator::generate_pair`] therefore **plants** an
//! admissible partner for a target fraction of `B` users (partner =
//! profile + independent per-dimension noise uniform on `[-eps, eps]`),
//! while every other vector is an independent uniform draw. Marginals
//! stay uniform; similarity equals the planted fraction; cross-matches
//! are negligible. A small `conflict_rate` plants greedy-hostile gadgets
//! so approximate methods show the paper's slight deficit.
//!
//! The purely statistical mode ([`UniformGenerator::generate_community`]
//! / [`UniformGenerator::generate_pair_statistical`]) is kept for
//! experiments at small value ranges, calibrated by
//! [`crate::calibrate::uniform_value_range`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csj_core::Community;

/// Tuning of the uniform generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformConfig {
    /// Vector dimensionality.
    pub d: usize,
    /// Inclusive upper bound of every counter (values are uniform on
    /// `0..=max_value`). The paper's Synthetic maximum is 500 000.
    pub max_value: u32,
    /// The join threshold planted partners must satisfy.
    pub eps: u32,
    /// Fraction of `B` users given an admissible partner in `A`.
    pub target_similarity: f64,
    /// Fraction of planted matches embedded in a greedy-hostile conflict
    /// gadget (consumes two planted slots at a time).
    pub conflict_rate: f64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        Self {
            d: 27,
            max_value: 500_000,
            eps: 15_000,
            target_similarity: 0.20,
            conflict_rate: 0.04,
        }
    }
}

/// Seeded generator of uniform community pairs.
#[derive(Debug, Clone, Copy)]
pub struct UniformGenerator {
    cfg: UniformConfig,
}

impl UniformGenerator {
    /// Create a generator.
    ///
    /// # Panics
    /// Panics if `d == 0` or the target similarity is outside `[0, 1]`.
    pub fn new(cfg: UniformConfig) -> Self {
        assert!(cfg.d >= 1, "d must be positive");
        assert!((0.0..=1.0).contains(&cfg.target_similarity));
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UniformConfig {
        &self.cfg
    }

    fn uniform_row(&self, rng: &mut StdRng, row: &mut [u32]) {
        for v in row.iter_mut() {
            *v = rng.gen_range(0..=self.cfg.max_value);
        }
    }

    /// A planted partner: the profile plus independent noise uniform on
    /// `[-eps, eps]` per dimension, clamped to the value range (clamping
    /// can only shrink the difference, so admissibility is preserved).
    fn partner_row(&self, rng: &mut StdRng, profile: &[u32], out: &mut [u32]) {
        let eps = self.cfg.eps as i64;
        for (o, &v) in out.iter_mut().zip(profile) {
            let noise = rng.gen_range(-eps..=eps);
            let shifted = (v as i64 + noise).clamp(0, self.cfg.max_value as i64);
            *o = shifted as u32;
        }
    }

    /// Generate one community of `n` independent uniform users.
    /// Deterministic in `seed`.
    pub fn generate_community(&self, name: &str, n: usize, seed: u64) -> Community {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Community::with_capacity(name, self.cfg.d, n);
        let mut row = vec![0u32; self.cfg.d];
        for i in 0..n {
            self.uniform_row(&mut rng, &mut row);
            c.push(i as u64, &row)
                .expect("row has the right dimensionality");
        }
        c
    }

    /// Generate a `(B, A)` pair of independent draws (no planting;
    /// similarity emerges statistically — use
    /// [`crate::calibrate::uniform_value_range`] to pick `max_value`).
    pub fn generate_pair_statistical(
        &self,
        name_b: &str,
        name_a: &str,
        nb: usize,
        na: usize,
        seed: u64,
    ) -> (Community, Community) {
        assert!(nb >= 1 && nb <= na, "need 1 <= nb <= na");
        let b = self.generate_community(name_b, nb, seed ^ 0x00B5_1DE5);
        let a = self.generate_community(name_a, na, seed ^ 0x000A_51DE);
        (b, a)
    }

    /// Generate a `(B, A)` pair whose similarity under `cfg.eps` equals
    /// `cfg.target_similarity` (to rounding), with uniform marginals.
    /// Deterministic in `seed`.
    pub fn generate_pair(
        &self,
        name_b: &str,
        name_a: &str,
        nb: usize,
        na: usize,
        seed: u64,
    ) -> (Community, Community) {
        assert!(nb >= 1 && nb <= na, "need 1 <= nb <= na");
        let mut rng = StdRng::seed_from_u64(seed);
        let planted = ((self.cfg.target_similarity * nb as f64).round() as usize)
            .min(nb)
            .min(na);

        let d = self.cfg.d;
        let mut b_rows: Vec<Vec<u32>> = Vec::with_capacity(nb);
        let mut a_rows: Vec<Vec<u32>> = Vec::with_capacity(na);
        let mut profile = vec![0u32; d];
        let mut partner = vec![0u32; d];

        let mut remaining = planted;
        while remaining > 0 {
            self.uniform_row(&mut rng, &mut profile);
            if remaining >= 2
                && self.cfg.eps > 0
                && self.cfg.max_value >= 2 * self.cfg.eps
                && rng.gen_bool(self.cfg.conflict_rate)
            {
                // Gadget: b1 = v, a1 = v, a2 = v (+eps in one dim),
                // b2 = v (+2*eps in that dim): b1 matches both a's, b2
                // only a2 — greedy can strand b2.
                let dim = rng.gen_range(0..d);
                // Keep headroom so the +2*eps shift stays in range.
                profile[dim] = profile[dim].min(self.cfg.max_value - 2 * self.cfg.eps);
                let mut a2 = profile.clone();
                a2[dim] += self.cfg.eps;
                let mut b2 = profile.clone();
                b2[dim] += 2 * self.cfg.eps;
                b_rows.push(profile.clone());
                b_rows.push(b2);
                a_rows.push(profile.clone());
                a_rows.push(a2);
                remaining -= 2;
            } else {
                self.partner_row(&mut rng, &profile, &mut partner);
                b_rows.push(profile.clone());
                a_rows.push(partner.clone());
                remaining -= 1;
            }
        }
        let mut row = vec![0u32; d];
        while b_rows.len() < nb {
            self.uniform_row(&mut rng, &mut row);
            b_rows.push(row.clone());
        }
        b_rows.truncate(nb);
        while a_rows.len() < na {
            self.uniform_row(&mut rng, &mut row);
            a_rows.push(row.clone());
        }
        a_rows.truncate(na);

        shuffle(&mut rng, &mut b_rows);
        shuffle(&mut rng, &mut a_rows);

        let b = Community::from_rows(
            name_b,
            d,
            b_rows.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .expect("generated rows are well-formed");
        let a = Community::from_rows(
            name_a,
            d,
            a_rows
                .into_iter()
                .enumerate()
                .map(|(i, v)| (1_000_000_000 + i as u64, v)),
        )
        .expect("generated rows are well-formed");
        (b, a)
    }
}

/// Fisher–Yates shuffle.
fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::uniform_value_range;
    use csj_core::verify::ground_truth;

    #[test]
    fn deterministic_in_seed() {
        let g = UniformGenerator::new(UniformConfig {
            d: 5,
            max_value: 100,
            eps: 3,
            ..UniformConfig::default()
        });
        let c1 = g.generate_community("X", 50, 9);
        let c2 = g.generate_community("X", 50, 9);
        assert_eq!(c1, c2);
        assert_ne!(c1, g.generate_community("X", 50, 10));
        let (b1, a1) = g.generate_pair("B", "A", 60, 80, 4);
        let (b2, a2) = g.generate_pair("B", "A", 60, 80, 4);
        assert_eq!(b1, b2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn values_respect_bound() {
        let g = UniformGenerator::new(UniformConfig {
            d: 4,
            max_value: 7,
            eps: 1,
            ..UniformConfig::default()
        });
        let c = g.generate_community("X", 200, 3);
        assert!(c.raw_data().iter().all(|&v| v <= 7));
        for v in 0..=7u32 {
            assert!(c.raw_data().contains(&v), "value {v} never drawn");
        }
    }

    #[test]
    fn planted_pair_hits_target_exactly() {
        // At the paper's regime accidental matches are impossible, so
        // ground-truth similarity equals the planted fraction.
        for target in [0.08, 0.16, 0.31] {
            let cfg = UniformConfig {
                target_similarity: target,
                ..UniformConfig::default()
            };
            let g = UniformGenerator::new(cfg);
            let (b, a) = g.generate_pair("B", "A", 400, 520, 77);
            let sim = ground_truth(&b, &a, cfg.eps).similarity.ratio();
            let expected = (target * 400.0).round() / 400.0;
            assert!(
                (sim - expected).abs() < 0.01,
                "target {target}, measured {sim}"
            );
        }
    }

    #[test]
    fn marginals_look_uniform() {
        let cfg = UniformConfig::default();
        let g = UniformGenerator::new(cfg);
        let (b, _) = g.generate_pair("B", "A", 2_000, 2_200, 5);
        let mean: f64 =
            b.raw_data().iter().map(|&v| v as f64).sum::<f64>() / b.raw_data().len() as f64;
        let expected = cfg.max_value as f64 / 2.0;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} too far from uniform expectation {expected}"
        );
    }

    #[test]
    fn statistical_mode_with_calibrated_range() {
        let d = 6;
        let eps = 1_000u32;
        let (nb, na) = (500usize, 600usize);
        let target = 0.25;
        let v = uniform_value_range(target, na, d, eps);
        let g = UniformGenerator::new(UniformConfig {
            d,
            max_value: v,
            eps,
            ..UniformConfig::default()
        });
        let (b, a) = g.generate_pair_statistical("B", "A", nb, na, 77);
        let sim = ground_truth(&b, &a, eps).similarity.ratio();
        // The closed-form model ignores one-to-one competition and edge
        // effects, so allow a generous band.
        assert!(
            (sim - target).abs() < 0.12,
            "target {target}, measured {sim}, V={v}"
        );
    }

    #[test]
    fn conflict_gadgets_do_not_break_admissibility() {
        let cfg = UniformConfig {
            target_similarity: 0.5,
            conflict_rate: 1.0,
            ..UniformConfig::default()
        };
        let g = UniformGenerator::new(cfg);
        let (b, a) = g.generate_pair("B", "A", 100, 120, 9);
        let gt = ground_truth(&b, &a, cfg.eps);
        // Every planted B user (gadget or not) must still be coverable.
        assert_eq!(gt.similarity.matched, 50);
    }
}
