//! Property-based tests for budgeted execution: a truncated
//! `pairs_above` sweep returns a subset of the unbounded result, and
//! resuming from its cursor yields exactly the missing pairs.

use std::time::Duration;

use csj_core::Community;
use csj_engine::{Budget, CsjEngine, EngineConfig, ExhaustReason, PairScore};
use proptest::prelude::*;

/// Random catalogs: a shared dimensionality plus 2..6 communities of
/// 1..8 users each, with small-range profiles so matches actually occur.
fn catalogs() -> impl Strategy<Value = (usize, Vec<Vec<Vec<u32>>>)> {
    (1usize..=3).prop_flat_map(|d| {
        let row = proptest::collection::vec(0u32..8, d);
        let communities = proptest::collection::vec(proptest::collection::vec(row, 1..8), 2..6);
        (Just(d), communities)
    })
}

fn build_engine(d: usize, communities: &[Vec<Vec<u32>>]) -> CsjEngine {
    let mut engine = CsjEngine::new(d, EngineConfig::new(1));
    for (i, rows) in communities.iter().enumerate() {
        let name = format!("c{i}");
        let community = Community::from_rows(
            &name,
            d,
            rows.iter().enumerate().map(|(u, v)| (u as u64, v.clone())),
        )
        .expect("well-formed");
        engine.register(community).expect("unique names");
    }
    engine
}

fn by_handles(mut pairs: Vec<PairScore>) -> Vec<PairScore> {
    pairs.sort_by_key(|p| (p.x.0, p.y.0));
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever a join-capped sweep returns is a subset of the unbounded
    /// sweep, and its cursor resumes to exactly the missing pairs —
    /// nothing lost, nothing duplicated, same scores.
    #[test]
    fn capped_sweep_is_a_resumable_subset(
        (d, communities) in catalogs(),
        threshold_tenths in 0u32..=10,
        cap in 0u64..12,
    ) {
        let threshold = f64::from(threshold_tenths) / 10.0;
        let full = build_engine(d, &communities)
            .pairs_above(threshold)
            .expect("unbounded sweep succeeds");

        let engine = build_engine(d, &communities);
        let budget = Budget::unlimited().with_max_joins(cap);
        let first = engine
            .pairs_above_with_budget(threshold, &budget, None)
            .expect("budgeted sweep degrades, never errors");

        // Subset with identical scores.
        for p in &first.value.pairs {
            prop_assert!(
                full.iter().any(|q| q.x == p.x && q.y == p.y && q.similarity == p.similarity),
                "truncated sweep invented pair {:?}", p
            );
        }

        match first.value.cursor {
            None => {
                prop_assert!(first.is_complete(), "no cursor means nothing was skipped");
                prop_assert_eq!(by_handles(first.value.pairs), by_handles(full));
            }
            Some(cursor) => {
                prop_assert!(!first.is_complete());
                prop_assert!(first.exhausted.unwrap().pairs_skipped > 0);
                let rest = engine
                    .pairs_above_with_budget(threshold, &Budget::unlimited(), Some(cursor))
                    .expect("resume succeeds");
                prop_assert!(rest.is_complete());
                prop_assert!(rest.value.cursor.is_none());
                let mut union = first.value.pairs.clone();
                union.extend(rest.value.pairs.iter().copied());
                prop_assert_eq!(
                    union.len(),
                    full.len(),
                    "slices must be disjoint and jointly exhaustive"
                );
                prop_assert_eq!(by_handles(union), by_handles(full));
            }
        }
    }

    /// An already-expired deadline processes nothing, reports Deadline,
    /// and the resume cursor recovers the entire unbounded result.
    #[test]
    fn expired_deadline_resumes_to_the_full_result(
        (d, communities) in catalogs(),
        threshold_tenths in 0u32..=10,
    ) {
        let threshold = f64::from(threshold_tenths) / 10.0;
        let full = build_engine(d, &communities)
            .pairs_above(threshold)
            .expect("unbounded sweep succeeds");

        let engine = build_engine(d, &communities);
        let spent = Budget::unlimited().with_deadline(Duration::ZERO);
        let first = engine
            .pairs_above_with_budget(threshold, &spent, None)
            .expect("well-formed Partial, not an error");
        prop_assert!(first.value.pairs.is_empty());
        let marker = first.exhausted.expect("at least one pair was skipped");
        prop_assert_eq!(marker.reason, ExhaustReason::Deadline);
        prop_assert_eq!(marker.pairs_done, 0);

        let cursor = first.value.cursor.expect("resume point");
        let resumed = engine
            .pairs_above_with_budget(threshold, &Budget::unlimited(), Some(cursor))
            .expect("resume succeeds");
        prop_assert!(resumed.is_complete());
        prop_assert_eq!(by_handles(resumed.value.pairs), by_handles(full));
    }
}
