//! Chaos tests: injected panics, errors, and slowdowns must degrade
//! per-candidate, never abort a query or poison the engine.
//!
//! Compiled only with the fault-injection harness:
//!
//! ```text
//! cargo test -p csj-engine --features fault-injection
//! ```
#![cfg(feature = "fault-injection")]

use std::time::Duration;

use csj_core::Community;
use csj_engine::fault::FaultPlan;
use csj_engine::{Budget, CommunityHandle, CsjEngine, EngineConfig, EngineError, ExhaustReason};

fn community(name: &str, rows: &[[u32; 2]]) -> Community {
    Community::from_rows(
        name,
        2,
        rows.iter().enumerate().map(|(i, v)| (i as u64, v.to_vec())),
    )
    .expect("well-formed")
}

/// An anchor plus five same-size candidates of decreasing similarity.
fn engine_with_candidates() -> (CsjEngine, CommunityHandle, Vec<CommunityHandle>) {
    let mut engine = CsjEngine::new(2, EngineConfig::new(1));
    let anchor = community("anchor", &[[1, 1], [5, 5], [9, 9], [13, 13]]);
    let x = engine.register(anchor).unwrap();
    let mut candidates = Vec::new();
    for k in 0..5u32 {
        let s = k * 2;
        let rows = [[1 + s, 1], [5 + s, 5], [9 + s, 9], [13 + s, 13]];
        let name = format!("cand{k}");
        candidates.push(engine.register(community(&name, &rows)).unwrap());
    }
    (engine, x, candidates)
}

fn scored(outcome: &csj_engine::ScreenOutcome) -> usize {
    outcome.shortlisted.len() + outcome.rejected.len() + outcome.inadmissible.len()
}

#[test]
fn screen_survives_a_panicking_candidate() {
    let (mut engine, x, candidates) = engine_with_candidates();
    let victim = candidates[2];
    engine.inject_faults(FaultPlan::new().panic_on(victim.0));

    let outcome = engine
        .screen(x, &candidates)
        .expect("one poisoned candidate must not fail the query");
    assert_eq!(
        scored(&outcome),
        candidates.len() - 1,
        "every healthy candidate got a result"
    );
    assert!(outcome.skipped.is_empty());
    assert_eq!(outcome.failed.len(), 1);
    let (failed_handle, err) = &outcome.failed[0];
    assert_eq!(*failed_handle, victim);
    match err {
        EngineError::JoinPanicked { handle, message } => {
            assert_eq!(*handle, victim.0);
            assert!(message.contains("injected fault"), "got: {message}");
        }
        other => panic!("expected JoinPanicked, got {other:?}"),
    }

    // The engine stays fully usable afterwards.
    engine.clear_faults();
    let healthy = engine.screen(x, &candidates).unwrap();
    assert!(healthy.failed.is_empty());
    assert_eq!(scored(&healthy), candidates.len());
}

#[test]
fn error_faults_are_contained_per_candidate() {
    let (mut engine, x, candidates) = engine_with_candidates();
    let victim = candidates[0];
    engine.inject_faults(FaultPlan::new().error_on(victim.0));

    let outcome = engine.screen(x, &candidates).unwrap();
    assert_eq!(
        outcome.failed,
        vec![(victim, EngineError::Faulted { handle: victim.0 })]
    );
    assert_eq!(scored(&outcome), candidates.len() - 1);
}

#[test]
fn sweep_isolates_a_panicking_pair() {
    let (mut engine, _x, candidates) = engine_with_candidates();
    let victim = candidates[1];
    engine.inject_faults(FaultPlan::new().panic_on(victim.0));

    let partial = engine
        .pairs_above_with_budget(0.0, &Budget::unlimited(), None)
        .unwrap();
    assert!(partial.is_complete(), "no budget involved");
    let sweep = partial.value;
    assert!(sweep.cursor.is_none());

    // 6 communities -> 15 pairs; the 5 touching the victim fail, the
    // other 10 all clear the 0.0 threshold.
    assert_eq!(sweep.failed.len(), 5);
    assert!(sweep.failed.iter().all(|(x, y, e)| {
        (*x == victim || *y == victim) && matches!(e, EngineError::JoinPanicked { .. })
    }));
    assert_eq!(sweep.pairs.len(), 10);
    assert!(sweep.pairs.iter().all(|p| p.x != victim && p.y != victim));
}

#[test]
fn slow_join_blows_the_deadline_and_the_sweep_resumes() {
    let (mut engine, _x, _candidates) = engine_with_candidates();
    // Handle 0 orients as B in every pair (smallest handle, equal sizes),
    // so the very first pair stalls well past the deadline.
    engine.inject_faults(FaultPlan::new().slow_on(0, Duration::from_millis(60)));
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(10));

    let partial = engine.pairs_above_with_budget(0.0, &budget, None).unwrap();
    let marker = partial
        .exhausted
        .expect("the deadline fires during the stalled join");
    assert_eq!(marker.reason, ExhaustReason::Deadline);
    assert!(marker.pairs_skipped > 0);
    let cursor = partial.value.cursor.expect("sweep must be resumable");

    engine.clear_faults();
    let resumed = engine
        .pairs_above_with_budget(0.0, &Budget::unlimited(), Some(cursor))
        .unwrap();
    assert!(resumed.is_complete());
    assert!(resumed.value.failed.is_empty());
    assert_eq!(
        partial.value.pairs.len() + resumed.value.pairs.len(),
        15,
        "first slice plus resumed slice cover all C(6,2) pairs"
    );
}

#[test]
fn faults_and_panics_surface_in_the_metrics_snapshot() {
    let (mut engine, x, candidates) = engine_with_candidates();
    engine.inject_faults(
        FaultPlan::new()
            .panic_on(candidates[1].0)
            .error_on(candidates[3].0),
    );
    engine.screen(x, &candidates).unwrap();

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter_value("csj_join_panics_total", &[]), 1);
    assert_eq!(snap.counter_value("csj_faults_total", &[]), 1);
    // Healthy candidates still executed their screen joins.
    assert_eq!(
        snap.counter_value("csj_joins_total", &[("method", "ap-minmax")]),
        3
    );
    // The Prometheus exposition carries the failure counters too.
    let prom = snap.to_prometheus();
    assert!(prom.contains("csj_join_panics_total 1"));
    assert!(prom.contains("csj_faults_total 1"));
}

#[test]
fn exhaustion_reasons_are_labeled_in_the_snapshot() {
    let (mut engine, x, candidates) = engine_with_candidates();
    engine.inject_faults(FaultPlan::new().slow_on(0, Duration::from_millis(60)));
    let deadline = Budget::unlimited().with_deadline(Duration::from_millis(10));
    engine
        .pairs_above_with_budget(0.0, &deadline, None)
        .unwrap();
    engine.clear_faults();
    let strict = Budget::unlimited().with_max_joins(0);
    engine.screen_with_budget(x, &candidates, &strict).unwrap();

    let snap = engine.metrics_snapshot();
    assert_eq!(
        snap.counter_value("csj_budget_exhausted_total", &[("reason", "deadline")]),
        1
    );
    assert_eq!(
        snap.counter_value("csj_budget_exhausted_total", &[("reason", "max-joins")]),
        1
    );
    assert_eq!(
        snap.counter_value("csj_budget_exhausted_total", &[("reason", "cancelled")]),
        0
    );
}

#[test]
fn trace_survives_a_panicked_query() {
    let (mut engine, x, candidates) = engine_with_candidates();
    let victim = candidates[2];
    engine.inject_faults(FaultPlan::new().panic_on(victim.0));

    // similarity() against the victim errors with JoinPanicked, but its
    // trace still lands in the flight recorder.
    let err = engine.similarity(x, victim).unwrap_err();
    assert!(matches!(err, EngineError::JoinPanicked { .. }));
    let traces = engine.traces(1);
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].kind, "similarity");
    assert!(
        traces[0].outcome.starts_with("failed:"),
        "got outcome {:?}",
        traces[0].outcome
    );
    assert!(traces[0].outcome.contains("panicked"));

    // A screen that degrades around the panic completes normally and
    // records a completed trace.
    engine.screen(x, &candidates).unwrap();
    let traces = engine.traces(1);
    assert_eq!(traces[0].kind, "screen");
    assert_eq!(traces[0].outcome, "completed");
}

#[test]
fn panicked_pairs_are_not_cached_as_results() {
    let (mut engine, x, candidates) = engine_with_candidates();
    let victim = candidates[3];
    engine.inject_faults(FaultPlan::new().panic_on(victim.0));
    let with_fault = engine.screen(x, &candidates).unwrap();
    assert_eq!(with_fault.failed.len(), 1);

    // Once the fault is gone, the victim scores like everyone else —
    // nothing stale was recorded while it was poisoned.
    engine.clear_faults();
    let sim = engine.similarity(x, victim).expect("victim is healthy now");
    assert!(sim.ratio() >= 0.0);
    let healthy = engine.screen(x, &candidates).unwrap();
    assert!(healthy.failed.is_empty());
    assert_eq!(scored(&healthy), candidates.len());
}
