//! End-to-end observability: metrics snapshots and flight-recorder
//! traces produced by real engine queries.

use csj_core::Community;
use csj_engine::{Budget, CsjEngine, EngineConfig, ExhaustReason};

fn community(name: &str, rows: &[[u32; 2]]) -> Community {
    Community::from_rows(
        name,
        2,
        rows.iter().enumerate().map(|(i, v)| (i as u64, v.to_vec())),
    )
    .expect("well-formed")
}

fn engine_with_three() -> (
    CsjEngine,
    csj_engine::CommunityHandle,
    csj_engine::CommunityHandle,
    csj_engine::CommunityHandle,
) {
    let mut engine = CsjEngine::new(2, EngineConfig::new(1));
    let anchor = community("anchor", &[[1, 1], [5, 5], [9, 9], [13, 13]]);
    let near = community("near", &[[1, 2], [5, 5], [9, 8], [100, 100]]);
    let far = community("far", &[[50, 0], [60, 0], [70, 0], [80, 0]]);
    let a = engine.register(anchor).unwrap();
    let n = engine.register(near).unwrap();
    let f = engine.register(far).unwrap();
    (engine, a, n, f)
}

#[test]
fn queries_populate_the_metrics_registry() {
    let (engine, a, n, f) = engine_with_three();
    engine.top_k_similar(a, 5).unwrap();
    engine.similarity(a, n).unwrap();
    engine.similarity(n, a).unwrap(); // cache hit

    let snap = engine.metrics_snapshot();
    assert_eq!(
        snap.counter_value("csj_queries_total", &[("kind", "top_k")]),
        1
    );
    assert_eq!(
        snap.counter_value("csj_queries_total", &[("kind", "similarity")]),
        2
    );
    // The top-k screened both candidates with ap-minmax and refined the
    // shortlisted one with ex-minmax; both similarity() calls were then
    // served from the cache it populated.
    assert_eq!(
        snap.counter_value("csj_joins_total", &[("method", "ap-minmax")]),
        2
    );
    assert_eq!(
        snap.counter_value("csj_joins_total", &[("method", "ex-minmax")]),
        1
    );
    assert_eq!(snap.counter_value("csj_cache_hits_total", &[]), 2);
    assert!(snap.counter_value("csj_rows_driven_total", &[]) > 0);
    assert!(snap.counter_value("csj_match_events_total", &[("kind", "match")]) >= 3);
    // Gauges reflect registry state at snapshot time.
    assert_eq!(snap.counter_value("csj_communities", &[]), 3);
    assert_eq!(snap.counter_value("csj_cached_pairs", &[]), 1);
    let _ = f;

    // Per-method latency histograms carry every join.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE csj_join_latency_seconds histogram"));
    assert!(prom.contains("csj_join_latency_seconds_count{method=\"ap-minmax\"} 2"));
    assert!(prom.contains("csj_join_latency_seconds_count{method=\"ex-minmax\"} 1"));
    assert!(prom.contains("csj_candidate_stream_depth_bucket"));
}

#[test]
fn budget_exhaustion_is_counted_and_traced() {
    let (engine, a, n, f) = engine_with_three();
    let budget = Budget::unlimited().with_max_joins(0);
    let partial = engine.screen_with_budget(a, &[n, f], &budget).unwrap();
    assert_eq!(
        partial.exhausted.expect("exhausted").reason,
        ExhaustReason::MaxJoins
    );

    let snap = engine.metrics_snapshot();
    assert_eq!(
        snap.counter_value("csj_budget_exhausted_total", &[("reason", "max-joins")]),
        1
    );
    assert_eq!(
        snap.counter_value("csj_budget_exhausted_total", &[("reason", "deadline")]),
        0
    );

    // The flight recorder holds the exhausted query's span tree.
    let traces = engine.traces(1);
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.kind, "screen");
    assert_eq!(trace.outcome, "exhausted:max-joins");
    assert!(trace.root.find("screen").is_some(), "screen phase span");
    let json = trace.to_json();
    assert!(json.contains("\"outcome\":\"exhausted:max-joins\""));
    assert!(json.contains("\"name\":\"screen\""));
}

#[test]
fn flight_recorder_keeps_the_most_recent_queries() {
    let (engine, a, n, _) = engine_with_three();
    for _ in 0..3 {
        engine.similarity(a, n).unwrap();
    }
    engine.pairs_above(0.5).unwrap();
    let traces = engine.traces(2);
    assert_eq!(traces.len(), 2, "last two queries, oldest first");
    assert_eq!(traces[0].kind, "similarity");
    assert_eq!(traces[1].kind, "pairs_above");
    assert!(traces[1].root.find("sweep").is_some());
    // Trace ids are assigned in completion order.
    assert!(traces[0].id < traces[1].id);
}

#[test]
fn top_k_trace_has_screen_and_refine_phases_with_join_spans() {
    let (engine, a, _, _) = engine_with_three();
    engine.top_k_similar(a, 5).unwrap();
    let traces = engine.traces(1);
    let trace = &traces[0];
    assert_eq!(trace.kind, "top_k");
    assert_eq!(trace.outcome, "completed");
    let screen = trace.root.find("screen").expect("screen phase");
    assert_eq!(screen.children.len(), 2, "both candidates screened");
    for join in &screen.children {
        assert_eq!(join.name, "join");
        assert_eq!(
            join.get_attr("method").map(ToString::to_string),
            Some("ap-minmax".to_string())
        );
    }
    let refine = trace.root.find("refine").expect("refine phase");
    assert_eq!(refine.children.len(), 1, "one shortlisted refine join");
}

#[test]
fn disabled_observability_records_nothing() {
    let mut config = EngineConfig::new(1);
    config.obs.enabled = false;
    let mut engine = CsjEngine::new(2, config);
    let a = engine
        .register(community("anchor", &[[1, 1], [5, 5]]))
        .unwrap();
    let n = engine
        .register(community("near", &[[1, 2], [5, 5]]))
        .unwrap();
    engine.similarity(a, n).unwrap();
    assert!(engine.traces(10).is_empty());
    let snap = engine.metrics_snapshot();
    assert_eq!(
        snap.counter_value("csj_queries_total", &[("kind", "similarity")]),
        0
    );
    // The engine's own stats still work.
    assert_eq!(engine.stats().joins_executed, 1);
}

#[test]
fn engine_stats_display_is_human_readable() {
    let (engine, a, n, _) = engine_with_three();
    engine.similarity(a, n).unwrap();
    let text = engine.stats().to_string();
    assert!(text.contains("communities:     3"));
    assert!(text.contains("joins executed:  1"));
    assert!(text.contains("rows driven"), "telemetry block included");
}
