//! Property-based tests: TrackedPair stays exact under arbitrary update
//! streams (cross-checked against full brute-force recomputation).

use csj_core::verify::ground_truth;
use csj_core::Community;
use csj_engine::{Side, TrackedPair};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    UpsertB(u64, Vec<u32>),
    UpsertA(u64, Vec<u32>),
    RemoveB(usize),
    RemoveA(usize),
}

fn ops(d: usize) -> impl Strategy<Value = Vec<Op>> {
    let vector = proptest::collection::vec(0u32..6, d);
    proptest::collection::vec(
        prop_oneof![
            (0u64..2000, vector.clone()).prop_map(|(id, v)| Op::UpsertB(id, v)),
            (0u64..2000, vector.clone()).prop_map(|(id, v)| Op::UpsertA(id, v)),
            (0usize..64).prop_map(Op::RemoveB),
            (0usize..64).prop_map(Op::RemoveA),
        ],
        1..30,
    )
}

fn seed_pair(d: usize) -> (Community, Community) {
    let mk = |name: &str, base: u64, n: u64| {
        Community::from_rows(
            name,
            d,
            (0..n).map(|i| {
                let v: Vec<u32> = (0..d as u64)
                    .map(|k| ((i * 3 + k * 5) % 6) as u32)
                    .collect();
                (base + i, v)
            }),
        )
        .expect("well-formed")
    };
    (mk("B", 0, 8), mk("A", 100, 10))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tracked_pair_matches_recompute((d, stream) in (1usize..=4).prop_flat_map(|d| (Just(d), ops(d)))) {
        let (b, a) = seed_pair(d);
        let mut pair = TrackedPair::new(b, a, 1).expect("same d");
        prop_assert_eq!(
            pair.similarity().matched,
            ground_truth(pair.b(), pair.a(), 1).similarity.matched
        );
        for op in stream {
            match op {
                Op::UpsertB(id, v) => pair.upsert_user(Side::B, id, &v).expect("valid"),
                Op::UpsertA(id, v) => pair.upsert_user(Side::A, id, &v).expect("valid"),
                Op::RemoveB(k) => {
                    if pair.b().len() > 1 {
                        let id = pair.b().user_id(k % pair.b().len());
                        pair.remove_user(Side::B, id).expect("exists");
                    }
                }
                Op::RemoveA(k) => {
                    if pair.a().len() > 1 {
                        let id = pair.a().user_id(k % pair.a().len());
                        pair.remove_user(Side::A, id).expect("exists");
                    }
                }
            }
            prop_assert_eq!(
                pair.similarity().matched,
                ground_truth(pair.b(), pair.a(), 1).similarity.matched,
                "tracked similarity diverged after {:?}", pair.updates_applied()
            );
        }
    }
}
