//! Engine pipeline tests on realistic generated communities.

use csj_core::{run, CsjMethod, CsjOptions};
use csj_data::vklike::{VkLikeConfig, VkLikeGenerator};
use csj_data::Category;
use csj_engine::{CommunityHandle, CsjEngine, EngineConfig};

/// Build an engine holding one anchor plus candidates whose audiences
/// contain a planted fraction of the anchor's users (exact profile
/// copies), so each candidate's CSJ similarity to the *same* anchor is
/// the planted fraction.
fn populated_engine() -> (CsjEngine, CommunityHandle, Vec<(CommunityHandle, f64)>) {
    use csj_core::Community;

    let mut engine = CsjEngine::new(27, EngineConfig::new(1));
    let generator = VkLikeGenerator::new(VkLikeConfig {
        target_similarity: 0.0,
        ..VkLikeConfig::default()
    });
    let (anchor, _) = generator.generate_pair(
        "anchor",
        "unused",
        Category::Sport,
        Category::Sport,
        700,
        800,
        500,
    );

    let sims = [0.30, 0.22, 0.17, 0.05];
    let mut candidates = Vec::new();
    for (i, &sim) in sims.iter().enumerate() {
        let mut cand = Community::new(format!("candidate-{i}"), 27);
        let planted = (sim * anchor.len() as f64).round() as usize;
        for j in 0..planted {
            // Copy an anchor user's profile verbatim (guaranteed match).
            cand.push(1_000 + j as u64, anchor.vector(j))
                .expect("same d");
        }
        // Non-matching fillers: a signature dimension with a huge value.
        let mut filler = vec![0u32; 27];
        for j in planted..800 {
            filler[(i + j) % 27] = 50_000 + (i * 977 + j * 31) as u32;
            cand.push(2_000_000 + j as u64, &filler).expect("same d");
            filler[(i + j) % 27] = 0;
        }
        let h = engine.register(cand).expect("fresh name");
        candidates.push((h, sim));
    }
    let anchor_handle = engine.register(anchor).expect("fresh name");
    (engine, anchor_handle, candidates)
}

#[test]
fn top_k_recovers_the_planted_ordering() {
    let (engine, anchor, candidates) = populated_engine();
    let top = engine.top_k_similar(anchor, 10).expect("valid query");
    // The 0.05 candidate is screened out (threshold 0.15); the rest come
    // back in descending planted order.
    assert_eq!(top.len(), 3);
    let expected: Vec<CommunityHandle> = {
        let mut c: Vec<_> = candidates.iter().filter(|&&(_, s)| s >= 0.15).collect();
        c.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
        c.into_iter().map(|&(h, _)| h).collect()
    };
    let got: Vec<CommunityHandle> = top.iter().map(|p| p.y).collect();
    assert_eq!(got, expected);
    // Scores sit at (or slightly above, via accidental matches) the
    // planted fractions.
    assert!((top[0].similarity.ratio() - 0.30).abs() < 0.05);
    assert!((top[1].similarity.ratio() - 0.22).abs() < 0.05);
    assert!((top[2].similarity.ratio() - 0.17).abs() < 0.05);
}

#[test]
fn refined_scores_match_direct_exact_joins() {
    let (engine, anchor, candidates) = populated_engine();
    let ranked = engine
        .screen_and_refine(
            anchor,
            &candidates.iter().map(|&(h, _)| h).collect::<Vec<_>>(),
        )
        .expect("valid query");
    let opts = CsjOptions::new(1);
    for score in &ranked {
        let b = engine.community(score.x).expect("registered").clone();
        let a = engine.community(score.y).expect("registered").clone();
        let (b, a) = if b.len() <= a.len() { (b, a) } else { (a, b) };
        let direct = run(CsjMethod::ExMinMax, &b, &a, &opts).expect("valid");
        assert_eq!(score.similarity, direct.similarity);
    }
}

#[test]
fn screening_is_cheaper_than_refining() {
    let (engine, anchor, candidates) = populated_engine();
    let handles: Vec<_> = candidates.iter().map(|&(h, _)| h).collect();
    let outcome = engine.screen(anchor, &handles).expect("valid");
    // Screening must have looked at every candidate exactly once.
    assert_eq!(
        outcome.shortlisted.len() + outcome.rejected.len() + outcome.inadmissible.len(),
        handles.len()
    );
    // And the rejected one is the 0.05-similarity community.
    assert_eq!(outcome.rejected.len(), 1);
}

#[test]
fn cache_survives_unrelated_updates() {
    let (mut engine, anchor, candidates) = populated_engine();
    let (first, _) = candidates[0];
    let (second, _) = candidates[1];
    let s1 = engine.similarity(anchor, first).expect("valid");
    let joins_before = engine.stats().joins_executed;
    // Touching an *unrelated* community must not invalidate the pair.
    engine.upsert_user(second, 424242, &[0; 27]).expect("valid");
    let s2 = engine.similarity(anchor, first).expect("valid");
    assert_eq!(s1, s2);
    assert_eq!(engine.stats().joins_executed, joins_before);
    // Touching a member of the pair must invalidate it.
    engine.upsert_user(first, 424242, &[0; 27]).expect("valid");
    let _ = engine.similarity(anchor, first).expect("valid");
    assert!(engine.stats().joins_executed > joins_before);
}
