//! End-to-end planner behaviour: `Auto` resolution across every query
//! kind, cold-start and frozen determinism, plan metrics and traces.

use csj_core::plan::CostTable;
use csj_core::{Community, CsjMethod};
use csj_engine::{CsjEngine, EngineConfig, Exactness, PlanInput, PlannerConfig, PlannerMode};

fn community(name: &str, rows: &[[u32; 2]]) -> Community {
    Community::from_rows(
        name,
        2,
        rows.iter().enumerate().map(|(i, v)| (i as u64, v.to_vec())),
    )
    .expect("well-formed")
}

/// An engine whose screening *and* refinement both delegate to the
/// planner.
fn auto_engine() -> (
    CsjEngine,
    csj_engine::CommunityHandle,
    csj_engine::CommunityHandle,
    csj_engine::CommunityHandle,
) {
    let mut config = EngineConfig::new(1);
    config.screen_method = CsjMethod::Auto;
    config.refine_method = CsjMethod::Auto;
    let mut engine = CsjEngine::new(2, config);
    let anchor = community("anchor", &[[1, 1], [5, 5], [9, 9], [13, 13]]);
    let near = community("near", &[[1, 2], [5, 5], [9, 8], [100, 100]]);
    let far = community("far", &[[50, 0], [60, 0], [70, 0], [80, 0]]);
    let a = engine.register(anchor).unwrap();
    let n = engine.register(near).unwrap();
    let f = engine.register(far).unwrap();
    (engine, a, n, f)
}

#[test]
fn auto_resolves_on_every_query_kind() {
    let (engine, a, n, f) = auto_engine();

    // All five query kinds run with both methods delegated.
    let sim = engine.similarity(a, n).unwrap();
    assert!(sim.ratio() > 0.0);
    let screen = engine.screen(a, &[n, f]).unwrap();
    assert_eq!(screen.shortlisted.len() + screen.rejected.len(), 2);
    let ranked = engine.screen_and_refine(a, &[n, f]).unwrap();
    assert!(!ranked.is_empty());
    let top = engine.top_k_similar(a, 2).unwrap();
    assert!(!top.is_empty());
    let pairs = engine.pairs_above(0.5).unwrap();
    assert!(!pairs.is_empty());

    let snap = engine.metrics_snapshot();
    // Every join the planner resolved is counted under a concrete
    // method — `auto` never reaches the kernel or the metrics.
    let planned: u64 = CsjMethod::ALL
        .iter()
        .map(|m| snap.counter_value("csj_plan_selected_total", &[("method", m.name())]))
        .sum();
    assert!(planned > 0, "Auto plans must be counted");
    let joins: u64 = CsjMethod::ALL
        .iter()
        .map(|m| snap.counter_value("csj_joins_total", &[("method", m.name())]))
        .sum();
    assert_eq!(joins, planned, "every join here went through the planner");
    let static_plans = snap.counter_value("csj_plan_source_total", &[("source", "static")]);
    let refined_plans = snap.counter_value("csj_plan_source_total", &[("source", "refined")]);
    assert_eq!(static_plans + refined_plans, planned);
    assert!(snap.counter_value("csj_plan_actual_us_total", &[]) > 0);

    // The metrics flow through the Prometheus exposition too.
    let prom = snap.to_prometheus();
    assert!(prom.contains("csj_plan_selected_total"));
    assert!(prom.contains("csj_plan_source_total{source=\"static\"}"));
}

#[test]
fn plan_traces_carry_estimates_and_alternatives() {
    let (engine, a, n, _) = auto_engine();
    engine.similarity(a, n).unwrap();
    let traces = engine.traces(4);
    let trace = traces.last().expect("similarity trace recorded");
    let plan = trace.root.find("plan").expect("plan span");
    assert!(plan.get_attr("method").is_some());
    assert!(plan.get_attr("estimated_us").is_some());
    assert!(plan.get_attr("actual_us").is_some());
    assert!(plan.get_attr("alternatives").is_some());
    assert!(plan.get_attr("cost_table").is_some());
}

#[test]
fn cold_start_plans_match_the_static_table() {
    // An engine with empty latency history must plan exactly like the
    // bare seeded cost table, deterministically.
    let (engine, a, n, _) = auto_engine();
    let plan = engine.plan_pair(a, n, Exactness::Exact).unwrap();
    assert!(plan.chosen.is_exact());
    // Reproduce the input and check against the static table: the
    // engine-side density estimate is deterministic, so the estimate
    // must agree bit-for-bit.
    let again = engine.plan_pair(a, n, Exactness::Exact).unwrap();
    assert_eq!(plan, again);
    let seeded = CostTable::seeded();
    assert_eq!(plan.table_source, "seeded");
    assert_eq!(plan.estimated_us, seeded.estimate(plan.chosen, &plan.input));
}

#[test]
fn frozen_engines_plan_identically_across_instances() {
    let frozen = || {
        let mut config = EngineConfig::new(1);
        config.refine_method = CsjMethod::Auto;
        config.planner = PlannerConfig {
            mode: PlannerMode::Frozen,
            ..PlannerConfig::default()
        };
        let mut engine = CsjEngine::new(2, config);
        let x = engine
            .register(community("x", &[[1, 1], [5, 5], [9, 9], [13, 13]]))
            .unwrap();
        let y = engine
            .register(community("y", &[[1, 2], [5, 5], [9, 8], [100, 100]]))
            .unwrap();
        (engine, x, y)
    };
    let (e1, x1, y1) = frozen();
    let (e2, x2, y2) = frozen();
    // Warm one engine with queries; frozen mode must ignore the
    // latency observations entirely.
    for _ in 0..5 {
        e1.similarity_with(x1, y1, CsjMethod::ExBaseline).unwrap();
    }
    let p1 = e1.plan_pair(x1, y1, Exactness::Any).unwrap();
    let p2 = e2.plan_pair(x2, y2, Exactness::Any).unwrap();
    assert_eq!(p1, p2, "frozen plans are byte-identical across engines");
    assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
}

#[test]
fn degradation_ladder_is_planner_ranked() {
    let (engine, a, n, _) = auto_engine();
    let ladder = engine.degradation_ladder_for(CsjMethod::ExMinMax, Some((a, n)));
    assert!(!ladder.is_empty());
    assert!(!ladder.contains(&CsjMethod::ExMinMax));
    assert_eq!(*ladder.last().unwrap(), CsjMethod::ApMinMax);
    assert!(ladder[0].is_exact(), "first rung preserves exactness");
    // Registry-average fallback (no pair) still produces a full ladder.
    let broad = engine.degradation_ladder_for(CsjMethod::ExSuperEgo, None);
    assert_eq!(*broad.last().unwrap(), CsjMethod::ApSuperEgo);
    // Approximate primaries degrade to themselves.
    assert_eq!(
        engine.degradation_ladder_for(CsjMethod::ApMinMax, None),
        vec![CsjMethod::ApMinMax]
    );
}

#[test]
fn explicit_methods_bypass_the_planner() {
    let mut config = EngineConfig::new(1);
    // Default config: concrete screen/refine methods.
    config.planner = PlannerConfig::default();
    let mut engine = CsjEngine::new(2, config);
    let x = engine.register(community("x", &[[1, 1], [5, 5]])).unwrap();
    let y = engine.register(community("y", &[[1, 2], [5, 5]])).unwrap();
    engine.similarity(x, y).unwrap();
    engine.similarity_with(x, y, CsjMethod::ExBaseline).unwrap();
    let snap = engine.metrics_snapshot();
    let planned: u64 = CsjMethod::ALL
        .iter()
        .map(|m| snap.counter_value("csj_plan_selected_total", &[("method", m.name())]))
        .sum();
    assert_eq!(planned, 0, "no Auto in play -> no plans recorded");
}

#[test]
fn auto_refinement_feeds_the_exact_cache() {
    let (engine, a, n, _) = auto_engine();
    let first = engine.similarity(a, n).unwrap();
    let stats_before = engine.stats();
    let second = engine.similarity(a, n).unwrap();
    let stats_after = engine.stats();
    assert_eq!(first, second);
    assert_eq!(
        stats_after.cache_hits,
        stats_before.cache_hits + 1,
        "planned exact refinement is cacheable"
    );
}

#[test]
fn plan_input_from_engine_is_well_formed() {
    let (engine, a, n, _) = auto_engine();
    let plan = engine.plan_pair(a, n, Exactness::Any).unwrap();
    let input: PlanInput = plan.input;
    assert_eq!(input.nb, 4);
    assert_eq!(input.na, 4);
    assert_eq!(input.d, 2);
    assert_eq!(input.eps, 1);
    assert!(input.density > 0.0 && input.density <= 1.0);
    assert_eq!(plan.candidates.len(), 8);
    assert!(plan
        .candidates
        .windows(2)
        .all(|w| w[0].estimated_us <= w[1].estimated_us));
}
