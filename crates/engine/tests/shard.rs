//! Sharded-execution contract tests.
//!
//! The tentpole claim of the sharded layer is *bit-identical merges*:
//! a fault-free sharded query returns exactly the flat path's result —
//! same pairs, same scores, same order — for every shard count, thread
//! count and (implicitly) steal order. Faults may only shrink
//! *coverage*, never corrupt what survives. These tests pin both claims.

use csj_core::Community;
use csj_engine::{Budget, CsjEngine, EngineConfig};
use proptest::prelude::*;

/// Deterministic LCG so every run sees the same catalog.
fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    }
}

/// A skewed catalog: community sizes spread over a 4× range so some
/// pairs are admissible and some are not, and part-sum masses differ
/// enough that the LPT layout actually separates the giants.
fn skewed_engine(seed: u64, threads: usize, shards: usize) -> CsjEngine {
    const D: usize = 3;
    let mut rng = lcg(seed);
    let mut config = EngineConfig::new(1);
    config.threads = threads;
    config.shard.enabled = true;
    config.shard.shards = shards;
    let mut engine = CsjEngine::new(D, config);
    for (i, len) in [4usize, 5, 6, 8, 10, 16].into_iter().enumerate() {
        let rows: Vec<(u64, Vec<u32>)> = (0..len as u64)
            .map(|u| (u + 1, (0..D).map(|_| (rng() % 10) as u32).collect()))
            .collect();
        let c = Community::from_rows(format!("c{i}"), D, rows).expect("well-formed");
        engine.register(c).expect("unique names");
    }
    engine
}

fn anchor(engine: &CsjEngine) -> csj_engine::CommunityHandle {
    engine.find("c3").expect("registered")
}

#[test]
fn sharded_ranked_queries_match_flat_bit_for_bit() {
    // The flat reference comes from a single-threaded engine so any
    // hidden dependence on the sharded engine's pool would show up.
    let reference = skewed_engine(7, 1, 1);
    let x = anchor(&reference);
    let flat_topk = reference.top_k_similar(x, 4).expect("flat top-k");
    let candidates: Vec<_> = reference.handles().filter(|&h| h != x).collect();
    let flat_ranked = reference
        .screen_and_refine(x, &candidates)
        .expect("flat screen+refine");

    for shards in [1usize, 2, 3, 5, 8] {
        for threads in [1usize, 2, 4] {
            let engine = skewed_engine(7, threads, shards);
            let x = anchor(&engine);
            let candidates: Vec<_> = engine.handles().filter(|&h| h != x).collect();

            let topk = engine.top_k_similar_sharded(x, 4).expect("sharded top-k");
            assert_eq!(
                topk.value, flat_topk,
                "top-k diverged at shards={shards} threads={threads}"
            );
            let cov = topk.coverage.expect("sharded queries report coverage");
            assert!(cov.identity_holds(), "{cov}");
            assert!(!cov.is_partial(), "fault-free must be complete: {cov}");
            assert_eq!(cov.unit_fraction(), 1.0);

            let ranked = engine
                .screen_and_refine_sharded(x, &candidates)
                .expect("sharded screen+refine");
            assert_eq!(
                ranked.value, flat_ranked,
                "screen+refine diverged at shards={shards} threads={threads}"
            );
            assert!(ranked.exhausted.is_none());
        }
    }
}

#[test]
fn sharded_pairs_above_matches_flat() {
    let reference = skewed_engine(11, 1, 1);
    let flat = reference.pairs_above(0.0).expect("flat sweep");
    assert!(!flat.is_empty(), "catalog must produce matching pairs");

    for shards in [1usize, 2, 3, 5, 8] {
        for threads in [1usize, 2, 4] {
            let engine = skewed_engine(11, threads, shards);
            let swept = engine.pairs_above_sharded(0.0).expect("sharded sweep");
            assert_eq!(
                swept.value.pairs, flat,
                "sweep diverged at shards={shards} threads={threads}"
            );
            assert!(
                swept.value.cursor.is_none(),
                "sharded sweeps report loss via coverage, not cursors"
            );
            let cov = swept.coverage.expect("coverage attached");
            assert!(cov.identity_holds() && !cov.is_partial(), "{cov}");
        }
    }
}

#[test]
fn exhausted_budget_is_coverage_accounted() {
    let engine = skewed_engine(13, 2, 3);
    let x = anchor(&engine);
    let starved = Budget::unlimited().with_max_joins(0);
    let partial = engine
        .top_k_similar_sharded_with_budget(x, 4, &starved)
        .expect("sharded top-k under a zero budget");
    assert!(partial.value.is_empty(), "no joins were allowed");
    assert!(partial.exhausted.is_some(), "the budget marker survives");
    let cov = partial.coverage.expect("coverage attached");
    assert!(cov.identity_holds(), "{cov}");
    assert!(cov.is_partial(), "skipped units must show: {cov}");
    assert!(cov.units_skipped > 0, "{cov}");
}

/// Random catalogs: shard count, thread count and dispatch order must
/// never change a sharded result. Mirrors the budget property suite's
/// catalog strategy.
fn catalogs() -> impl Strategy<Value = (usize, Vec<Vec<Vec<u32>>>)> {
    (1usize..=3).prop_flat_map(|d| {
        let row = proptest::collection::vec(0u32..8, d);
        let communities = proptest::collection::vec(proptest::collection::vec(row, 1..8), 2..6);
        (Just(d), communities)
    })
}

fn build_engine(
    d: usize,
    communities: &[Vec<Vec<u32>>],
    shards: usize,
    threads: usize,
) -> CsjEngine {
    let mut config = EngineConfig::new(1);
    config.threads = threads;
    config.shard.enabled = true;
    config.shard.shards = shards;
    let mut engine = CsjEngine::new(d, config);
    for (i, rows) in communities.iter().enumerate() {
        let name = format!("c{i}");
        let community = Community::from_rows(
            &name,
            d,
            rows.iter().enumerate().map(|(u, v)| (u as u64, v.clone())),
        )
        .expect("well-formed");
        engine.register(community).expect("unique names");
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For arbitrary catalogs, every (shard count, thread count) pairing
    /// merges back to the flat ranking and the flat sweep bit for bit,
    /// with complete coverage.
    #[test]
    fn sharded_results_are_shard_count_independent(
        (d, communities) in catalogs(),
        shards in 1usize..9,
        threads in 1usize..5,
        threshold_tenths in 0u32..=10,
    ) {
        let threshold = f64::from(threshold_tenths) / 10.0;
        let flat_engine = build_engine(d, &communities, 1, 1);
        let x = flat_engine.find("c0").expect("registered");
        let flat_topk = flat_engine.top_k_similar(x, 3).expect("flat top-k");
        let flat_pairs = flat_engine.pairs_above(threshold).expect("flat sweep");

        let engine = build_engine(d, &communities, shards, threads);
        let x = engine.find("c0").expect("registered");
        let topk = engine.top_k_similar_sharded(x, 3).expect("sharded top-k");
        prop_assert_eq!(&topk.value, &flat_topk);
        let cov = topk.coverage.expect("coverage attached");
        prop_assert!(cov.identity_holds() && !cov.is_partial());

        let swept = engine.pairs_above_sharded(threshold).expect("sharded sweep");
        prop_assert_eq!(&swept.value.pairs, &flat_pairs);
        let cov = swept.coverage.expect("coverage attached");
        prop_assert!(cov.identity_holds() && !cov.is_partial());
    }
}

/// Fault injection: losses shrink coverage, never corrupt survivors.
#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use csj_engine::{PairScore, ShardFaultPlan};

    /// Survivors of a partial query must agree exactly with the flat
    /// result restricted to the same communities.
    fn assert_survivors_exact(survivors: &[PairScore], flat: &[PairScore]) {
        for s in survivors {
            let reference = flat
                .iter()
                .find(|p| p.x == s.x && p.y == s.y)
                .unwrap_or_else(|| panic!("survivor {s:?} not in the flat result"));
            assert_eq!(s.similarity, reference.similarity, "corrupted survivor");
        }
    }

    #[test]
    fn persistent_kill_shrinks_coverage_and_keeps_survivors_exact() {
        let reference = skewed_engine(17, 1, 1);
        let x = anchor(&reference);
        let flat = reference.top_k_similar(x, 5).expect("flat top-k");

        let mut engine = skewed_engine(17, 2, 3);
        engine.inject_shard_faults(ShardFaultPlan::new().kill(0, u32::MAX));
        let x = anchor(&engine);
        let partial = engine.top_k_similar_sharded(x, 5).expect("typed, not Err");
        let cov = partial.coverage.expect("coverage attached");
        assert!(cov.identity_holds(), "{cov}");
        assert!(cov.is_partial(), "a lost shard must show: {cov}");
        assert_eq!(cov.failed, 1, "exactly the attacked shard fails: {cov}");
        assert!(cov.units_skipped > 0, "its members went unscreened: {cov}");
        assert_survivors_exact(&partial.value, &flat);
    }

    #[test]
    fn single_kill_is_rescued_by_hedge_with_full_coverage() {
        let reference = skewed_engine(19, 1, 1);
        let x = anchor(&reference);
        let flat = reference.top_k_similar(x, 5).expect("flat top-k");

        let mut engine = skewed_engine(19, 2, 3);
        engine.inject_shard_faults(ShardFaultPlan::new().kill(1, 1));
        let x = anchor(&engine);
        let partial = engine.top_k_similar_sharded(x, 5).expect("rescued");
        let cov = partial.coverage.expect("coverage attached");
        assert!(cov.identity_holds(), "{cov}");
        assert!(!cov.is_partial(), "the hedge restores completeness: {cov}");
        assert_eq!(cov.hedged, 1, "the rescue is visible: {cov}");
        assert_eq!(partial.value, flat, "rescued result is bit-identical");
    }

    #[test]
    fn injected_panics_resolve_typed_and_never_escape() {
        let mut engine = skewed_engine(23, 2, 3);
        engine.inject_shard_faults(ShardFaultPlan::new().panic_on(0, u32::MAX));
        let swept = engine
            .pairs_above_sharded(0.0)
            .expect("panic contained at the shard boundary");
        let cov = swept.coverage.expect("coverage attached");
        assert!(cov.identity_holds(), "{cov}");
        assert_eq!(cov.failed, 1, "{cov}");
        // And the engine stays usable afterwards.
        engine.clear_shard_faults();
        let healthy = engine.pairs_above_sharded(0.0).expect("healthy again");
        assert!(!healthy.coverage.expect("coverage").is_partial());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Property: correctness under a single persistent shard loss —
        /// the sharded sweep's survivors are always a subset of the flat
        /// sweep with identical scores, and the fate identity holds.
        #[test]
        fn lossy_sweep_is_an_exact_subset(
            (d, communities) in catalogs(),
            shards in 2usize..6,
        ) {
            let flat = build_engine(d, &communities, 1, 1)
                .pairs_above(0.0)
                .expect("flat sweep");
            let mut engine = build_engine(d, &communities, shards, 2);
            engine.inject_shard_faults(ShardFaultPlan::new().kill(0, u32::MAX));
            let swept = engine.pairs_above_sharded(0.0).expect("typed");
            let cov = swept.coverage.expect("coverage attached");
            prop_assert!(cov.identity_holds());
            for s in &swept.value.pairs {
                let reference = flat
                    .iter()
                    .find(|p| p.x == s.x && p.y == s.y);
                prop_assert!(reference.is_some(), "phantom pair {:?}", s);
                prop_assert_eq!(reference.unwrap().similarity, s.similarity);
            }
        }
    }
}
