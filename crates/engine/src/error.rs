//! Engine error type.

use csj_core::CsjError;

/// Errors returned by [`crate::CsjEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The handle does not refer to a registered community.
    UnknownCommunity(u32),
    /// A community with this name is already registered.
    DuplicateName(String),
    /// The community's dimensionality does not match the engine's.
    DimensionMismatch { engine_d: usize, got: usize },
    /// The user id is not present in the community.
    UnknownUser(u64),
    /// The underlying CSJ join rejected the pair (size constraint, ...).
    Csj(CsjError),
    /// The join for this candidate panicked; the panic was caught at the
    /// per-candidate isolation boundary and the rest of the query ran on.
    JoinPanicked { handle: u32, message: String },
    /// An injected fault fired for this handle. Produced only by the
    /// `fault-injection` chaos harness, never in production.
    Faulted { handle: u32 },
    /// The query's budget was exhausted or its token tripped before this
    /// join ran. Internal to budgeted execution — public query APIs
    /// convert it into a [`crate::Partial`] marker, not an error.
    Cancelled,
}

impl From<CsjError> for EngineError {
    fn from(e: CsjError) -> Self {
        EngineError::Csj(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownCommunity(h) => write!(f, "unknown community handle {h}"),
            EngineError::DuplicateName(n) => write!(f, "community name {n:?} already registered"),
            EngineError::DimensionMismatch { engine_d, got } => {
                write!(f, "engine is {engine_d}-dimensional, community has d={got}")
            }
            EngineError::UnknownUser(id) => write!(f, "user id {id} not in community"),
            EngineError::Csj(e) => write!(f, "CSJ error: {e}"),
            EngineError::JoinPanicked { handle, message } => {
                write!(f, "join panicked for community handle {handle}: {message}")
            }
            EngineError::Faulted { handle } => {
                write!(f, "injected fault for community handle {handle}")
            }
            EngineError::Cancelled => write!(f, "query cancelled before this join ran"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Csj(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::UnknownCommunity(3).to_string().contains('3'));
        assert!(EngineError::DuplicateName("x".into())
            .to_string()
            .contains("\"x\""));
        assert!(EngineError::DimensionMismatch {
            engine_d: 2,
            got: 3
        }
        .to_string()
        .contains("d=3"));
        assert!(EngineError::UnknownUser(9).to_string().contains('9'));
        let wrapped: EngineError = CsjError::SizeConstraint { nb: 1, na: 9 }.into();
        assert!(wrapped.to_string().contains("CSJ error"));
        let panicked = EngineError::JoinPanicked {
            handle: 4,
            message: "boom".into(),
        };
        assert!(panicked.to_string().contains("handle 4"));
        assert!(panicked.to_string().contains("boom"));
        assert!(EngineError::Faulted { handle: 6 }
            .to_string()
            .contains("injected fault"));
        assert!(EngineError::Cancelled.to_string().contains("cancelled"));
    }
}
