//! Deterministic fault injection for chaos-testing the engine.
//!
//! Compiled only under the `fault-injection` cargo feature, and meant
//! for tests: a [`FaultPlan`] tells the engine to panic, error, or
//! stall whenever a join touches a specific community handle, so tests
//! can assert that one poisoned candidate never takes down the rest of
//! a query. The hook fires inside the engine's per-candidate isolation
//! boundary — exactly where a real bug in a join kernel would surface.
//!
//! ```no_run
//! # use csj_engine::{CsjEngine, EngineConfig};
//! # use csj_engine::fault::FaultPlan;
//! # let mut engine = CsjEngine::new(2, EngineConfig::new(1));
//! engine.inject_faults(FaultPlan::new().panic_on(2).slow_on(3, std::time::Duration::from_millis(50)));
//! // ... queries now hit the injected faults ...
//! engine.clear_faults();
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::EngineError;

/// Which faults to inject, keyed by the raw id of the community handle
/// a join is about to touch. A handle may appear in several sets; slow
/// applies first, then error, then panic (bounded panic budgets before
/// unconditional panics).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panic_on: HashSet<u32>,
    /// Transient panic budgets: the handle panics while its counter is
    /// positive, then behaves normally. `Arc` so clones of the plan
    /// (and the engine's installed copy) share one budget — this is
    /// what lets a circuit breaker observe a fault that *heals*, and
    /// therefore recover.
    panic_budget: HashMap<u32, Arc<AtomicU64>>,
    error_on: HashSet<u32>,
    slow_on: HashMap<u32, Duration>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic (as a buggy join kernel would) when a join touches `handle`.
    pub fn panic_on(mut self, handle: u32) -> Self {
        self.panic_on.insert(handle);
        self
    }

    /// Panic on the first `n` joins touching `handle`, then heal: later
    /// joins run normally. The budget is shared across clones of the
    /// plan, so installing the plan into an engine does not reset it.
    /// This models the transient fault a circuit breaker is designed
    /// for — trip while the handle is broken, recover once it heals.
    pub fn panic_n_times(mut self, handle: u32, n: u64) -> Self {
        self.panic_budget
            .insert(handle, Arc::new(AtomicU64::new(n)));
        self
    }

    /// Return [`EngineError::Faulted`] when a join touches `handle`.
    pub fn error_on(mut self, handle: u32) -> Self {
        self.error_on.insert(handle);
        self
    }

    /// Sleep for `delay` before any join touching `handle`, simulating a
    /// pathologically slow candidate for deadline tests.
    pub fn slow_on(mut self, handle: u32, delay: Duration) -> Self {
        self.slow_on.insert(handle, delay);
        self
    }

    /// Fire the faults registered for `handle`. Called by the engine
    /// just before each join, inside its panic-isolation boundary.
    pub(crate) fn apply(&self, handle: u32) -> Result<(), EngineError> {
        if let Some(delay) = self.slow_on.get(&handle) {
            std::thread::sleep(*delay);
        }
        if self.error_on.contains(&handle) {
            return Err(EngineError::Faulted { handle });
        }
        if let Some(budget) = self.panic_budget.get(&handle) {
            // Decrement-if-positive; the CAS loop keeps concurrent
            // workers from panicking more than `n` times in total.
            let mut left = budget.load(Ordering::Relaxed);
            while left > 0 {
                match budget.compare_exchange_weak(
                    left,
                    left - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => panic!("injected fault: transient panic on community handle {handle}"),
                    Err(now) => left = now,
                }
            }
        }
        if self.panic_on.contains(&handle) {
            panic!("injected fault: panic on community handle {handle}");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        assert_eq!(FaultPlan::new().apply(7), Ok(()));
    }

    #[test]
    fn error_fault_names_the_handle() {
        let plan = FaultPlan::new().error_on(3);
        assert_eq!(plan.apply(3), Err(EngineError::Faulted { handle: 3 }));
        assert_eq!(plan.apply(4), Ok(()));
    }

    #[test]
    fn panic_fault_panics() {
        let plan = FaultPlan::new().panic_on(5);
        let caught = std::panic::catch_unwind(|| plan.apply(5));
        assert!(caught.is_err());
    }

    #[test]
    fn panic_budget_heals_after_n_fires() {
        let plan = FaultPlan::new().panic_n_times(2, 3);
        let installed = plan.clone(); // engines get a clone; budget is shared
        for _ in 0..3 {
            assert!(std::panic::catch_unwind(|| installed.apply(2)).is_err());
        }
        assert_eq!(installed.apply(2), Ok(()), "budget spent: handle healed");
        assert_eq!(plan.apply(2), Ok(()), "clones share the budget");
    }

    #[test]
    fn slow_fault_delays() {
        let plan = FaultPlan::new().slow_on(1, Duration::from_millis(20));
        let start = std::time::Instant::now();
        assert_eq!(plan.apply(1), Ok(()));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
