//! Deterministic fault injection for chaos-testing the engine.
//!
//! Compiled only under the `fault-injection` cargo feature, and meant
//! for tests: a [`FaultPlan`] tells the engine to panic, error, or
//! stall whenever a join touches a specific community handle, so tests
//! can assert that one poisoned candidate never takes down the rest of
//! a query. The hook fires inside the engine's per-candidate isolation
//! boundary — exactly where a real bug in a join kernel would surface.
//!
//! ```no_run
//! # use csj_engine::{CsjEngine, EngineConfig};
//! # use csj_engine::fault::FaultPlan;
//! # let mut engine = CsjEngine::new(2, EngineConfig::new(1));
//! engine.inject_faults(FaultPlan::new().panic_on(2).slow_on(3, std::time::Duration::from_millis(50)));
//! // ... queries now hit the injected faults ...
//! engine.clear_faults();
//! ```

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use crate::error::EngineError;

/// Which faults to inject, keyed by the raw id of the community handle
/// a join is about to touch. A handle may appear in several sets; slow
/// applies first, then error, then panic.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panic_on: HashSet<u32>,
    error_on: HashSet<u32>,
    slow_on: HashMap<u32, Duration>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic (as a buggy join kernel would) when a join touches `handle`.
    pub fn panic_on(mut self, handle: u32) -> Self {
        self.panic_on.insert(handle);
        self
    }

    /// Return [`EngineError::Faulted`] when a join touches `handle`.
    pub fn error_on(mut self, handle: u32) -> Self {
        self.error_on.insert(handle);
        self
    }

    /// Sleep for `delay` before any join touching `handle`, simulating a
    /// pathologically slow candidate for deadline tests.
    pub fn slow_on(mut self, handle: u32, delay: Duration) -> Self {
        self.slow_on.insert(handle, delay);
        self
    }

    /// Fire the faults registered for `handle`. Called by the engine
    /// just before each join, inside its panic-isolation boundary.
    pub(crate) fn apply(&self, handle: u32) -> Result<(), EngineError> {
        if let Some(delay) = self.slow_on.get(&handle) {
            std::thread::sleep(*delay);
        }
        if self.error_on.contains(&handle) {
            return Err(EngineError::Faulted { handle });
        }
        if self.panic_on.contains(&handle) {
            panic!("injected fault: panic on community handle {handle}");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        assert_eq!(FaultPlan::new().apply(7), Ok(()));
    }

    #[test]
    fn error_fault_names_the_handle() {
        let plan = FaultPlan::new().error_on(3);
        assert_eq!(plan.apply(3), Err(EngineError::Faulted { handle: 3 }));
        assert_eq!(plan.apply(4), Ok(()));
    }

    #[test]
    fn panic_fault_panics() {
        let plan = FaultPlan::new().panic_on(5);
        let caught = std::panic::catch_unwind(|| plan.apply(5));
        assert!(caught.is_err());
    }

    #[test]
    fn slow_fault_delays() {
        let plan = FaultPlan::new().slow_on(1, Duration::from_millis(20));
        let start = std::time::Instant::now();
        assert_eq!(plan.apply(1), Ok(()));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
