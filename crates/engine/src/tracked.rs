//! Incremental CSJ: a community pair whose *exact* similarity is kept
//! current under user-level updates without re-running the join.
//!
//! The paper's category counters "constantly" grow (Section 1.1: viewing
//! a comedy-romance movie bumps two counters), so an online system that
//! monitors `similarity(B, A)` faces a stream of single-user updates. A
//! [`TrackedPair`] pays for one full exact join up front, then maintains
//!
//! * the candidate edge set (recomputing only the updated user's row —
//!   `O(n·d)` instead of `O(|B|·|A|·d)`), and
//! * a **maximum** one-to-one matching via
//!   [`csj_matching::DynamicMatching`] (a bounded number of
//!   augmenting-path searches per update),
//!
//! so `similarity()` is exact after every update. Because the maintained
//! matching is a true maximum, a tracked pair is at least as accurate as
//! the paper's CSF-based exact methods.

use csj_core::verify::ground_truth;
use csj_core::{vectors_match, Community, Similarity, UserId};
use csj_matching::{DynamicMatching, MatchGraph};

use crate::error::EngineError;

/// A `(B, A)` pair with incrementally maintained exact CSJ similarity.
#[derive(Debug, Clone)]
pub struct TrackedPair {
    b: Community,
    a: Community,
    eps: u32,
    matching: DynamicMatching,
    updates_applied: u64,
}

/// Which side of the pair a user belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The smaller community `B` (the similarity denominator).
    B,
    /// The larger community `A`.
    A,
}

impl TrackedPair {
    /// Run the initial exact join and set up the dynamic matching.
    ///
    /// The size constraint is *not* enforced here — a tracked pair is a
    /// monitoring tool and updates may move the pair in and out of the
    /// admissible band; use [`TrackedPair::is_admissible`] to check.
    pub fn new(b: Community, a: Community, eps: u32) -> Result<Self, EngineError> {
        if b.d() != a.d() {
            return Err(EngineError::DimensionMismatch {
                engine_d: b.d(),
                got: a.d(),
            });
        }
        let gt = ground_truth(&b, &a, eps);
        let graph = MatchGraph::from_edges(b.len() as u32, a.len() as u32, gt.candidate_pairs);
        let matching = DynamicMatching::from_graph(&graph);
        Ok(Self {
            b,
            a,
            eps,
            matching,
            updates_applied: 0,
        })
    }

    /// The `B` community.
    pub fn b(&self) -> &Community {
        &self.b
    }

    /// The `A` community.
    pub fn a(&self) -> &Community {
        &self.a
    }

    /// The epsilon the pair is tracked under.
    pub fn eps(&self) -> u32 {
        self.eps
    }

    /// Updates applied since construction.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Whether the pair currently satisfies `ceil(|A|/2) <= |B| <= |A|`.
    pub fn is_admissible(&self) -> bool {
        csj_core::validate_sizes(self.b.len(), self.a.len()).is_ok()
    }

    /// The current exact similarity (maximum matching / |B|).
    pub fn similarity(&self) -> Similarity {
        Similarity::new(self.matching.matching_size(), self.b.len())
    }

    /// Overwrite (or insert) a user's profile on `side` and repair the
    /// matching incrementally.
    pub fn upsert_user(
        &mut self,
        side: Side,
        user: UserId,
        vector: &[u32],
    ) -> Result<(), EngineError> {
        let d = self.b.d();
        if vector.len() != d {
            return Err(EngineError::Csj(csj_core::CsjError::VectorLength {
                expected: d,
                got: vector.len(),
            }));
        }
        self.updates_applied += 1;
        match side {
            Side::B => {
                let idx = match self.b.find_user(user) {
                    Some(i) => {
                        self.b.set_vector(i, vector).map_err(EngineError::Csj)?;
                        i as u32
                    }
                    None => {
                        self.b.push(user, vector).map_err(EngineError::Csj)?;
                        // Reuse a cleared matching slot left behind by an
                        // earlier removal, or grow the matching.
                        let new_idx = (self.b.len() - 1) as u32;
                        while self.matching.num_left() <= new_idx as usize {
                            self.matching.add_left_vertex();
                        }
                        new_idx
                    }
                };
                let edges = self.edges_for_b(idx as usize);
                self.matching.set_left_edges(idx, edges);
            }
            Side::A => {
                let idx = match self.a.find_user(user) {
                    Some(i) => {
                        self.a.set_vector(i, vector).map_err(EngineError::Csj)?;
                        i as u32
                    }
                    None => {
                        self.a.push(user, vector).map_err(EngineError::Csj)?;
                        let new_idx = (self.a.len() - 1) as u32;
                        while self.matching.num_right() <= new_idx as usize {
                            self.matching.add_right_vertex();
                        }
                        new_idx
                    }
                };
                let edges = self.edges_for_a(idx as usize);
                self.matching.set_right_edges(idx, edges);
            }
        }
        Ok(())
    }

    /// Remove a user from `side` (the user keeps its slot with an empty
    /// candidate set, so existing indices stay stable; for `B` the
    /// similarity denominator shrinks).
    pub fn remove_user(&mut self, side: Side, user: UserId) -> Result<(), EngineError> {
        self.updates_applied += 1;
        match side {
            Side::B => {
                let i = self
                    .b
                    .find_user(user)
                    .ok_or(EngineError::UnknownUser(user))?;
                // Swap-remove moves the last user into slot i: rewire both
                // affected vertices.
                let last = self.b.len() - 1;
                self.b.swap_remove_user(i);
                self.matching.clear_left(last as u32);
                if i < self.b.len() {
                    let edges = self.edges_for_b(i);
                    self.matching.set_left_edges(i as u32, edges);
                } else {
                    self.matching.clear_left(i as u32);
                }
            }
            Side::A => {
                let i = self
                    .a
                    .find_user(user)
                    .ok_or(EngineError::UnknownUser(user))?;
                let last = self.a.len() - 1;
                self.a.swap_remove_user(i);
                self.matching.clear_right(last as u32);
                if i < self.a.len() {
                    let edges = self.edges_for_a(i);
                    self.matching.set_right_edges(i as u32, edges);
                } else {
                    self.matching.clear_right(i as u32);
                }
            }
        }
        Ok(())
    }

    /// Candidate partners of `B[i]` (linear scan of `A`).
    fn edges_for_b(&self, i: usize) -> Vec<u32> {
        let bv = self.b.vector(i);
        (0..self.a.len())
            .filter(|&j| vectors_match(bv, self.a.vector(j), self.eps))
            .map(|j| j as u32)
            .collect()
    }

    /// Candidate partners of `A[j]` (linear scan of `B`).
    fn edges_for_a(&self, j: usize) -> Vec<u32> {
        let av = self.a.vector(j);
        (0..self.b.len())
            .filter(|&i| vectors_match(self.b.vector(i), av, self.eps))
            .map(|i| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn communities() -> (Community, Community) {
        let b = Community::from_rows(
            "B",
            2,
            vec![(1u64, vec![1u32, 1]), (2, vec![5, 5]), (3, vec![9, 9])],
        )
        .unwrap();
        let a = Community::from_rows(
            "A",
            2,
            vec![(10u64, vec![1u32, 2]), (11, vec![5, 4]), (12, vec![50, 50])],
        )
        .unwrap();
        (b, a)
    }

    /// Oracle: full recompute.
    fn oracle(p: &TrackedPair) -> usize {
        ground_truth(p.b(), p.a(), p.eps()).similarity.matched
    }

    #[test]
    fn initial_join_matches_ground_truth() {
        let (b, a) = communities();
        let p = TrackedPair::new(b, a, 1).unwrap();
        assert_eq!(p.similarity().matched, 2);
        assert_eq!(p.similarity().matched, oracle(&p));
        assert!(p.is_admissible());
    }

    #[test]
    fn update_moves_similarity_both_ways() {
        let (b, a) = communities();
        let mut p = TrackedPair::new(b, a, 1).unwrap();
        // Move the unmatched A user onto B's third profile.
        p.upsert_user(Side::A, 12, &[9, 8]).unwrap();
        assert_eq!(p.similarity().matched, 3);
        assert_eq!(p.similarity().matched, oracle(&p));
        // Break one of the original matches.
        p.upsert_user(Side::B, 1, &[100, 100]).unwrap();
        assert_eq!(p.similarity().matched, 2);
        assert_eq!(p.similarity().matched, oracle(&p));
        assert_eq!(p.updates_applied(), 2);
    }

    #[test]
    fn inserting_new_users_grows_the_pair() {
        let (b, a) = communities();
        let mut p = TrackedPair::new(b, a, 1).unwrap();
        p.upsert_user(Side::B, 99, &[50, 49]).unwrap();
        assert_eq!(p.b().len(), 4);
        assert_eq!(p.similarity().matched, 3); // pairs with A user 12
        assert_eq!(p.similarity().matched, oracle(&p));
    }

    #[test]
    fn removal_rewires_the_swapped_user() {
        let (b, a) = communities();
        let mut p = TrackedPair::new(b, a, 1).unwrap();
        // Remove the FIRST B user: the last one is swapped into slot 0.
        p.remove_user(Side::B, 1).unwrap();
        assert_eq!(p.b().len(), 2);
        assert_eq!(p.similarity().matched, oracle(&p));
        // Remove an A user too.
        p.remove_user(Side::A, 11).unwrap();
        assert_eq!(p.similarity().matched, oracle(&p));
        assert!(matches!(
            p.remove_user(Side::A, 777),
            Err(EngineError::UnknownUser(777))
        ));
    }

    #[test]
    fn rejects_dimension_mismatches() {
        let (b, a) = communities();
        let mut p = TrackedPair::new(b.clone(), a.clone(), 1).unwrap();
        assert!(p.upsert_user(Side::B, 1, &[1, 2, 3]).is_err());
        let bad = Community::new("bad", 3);
        assert!(TrackedPair::new(b, bad, 1).is_err());
    }

    #[test]
    fn random_update_stream_stays_exact() {
        let mut state = 0xAB1E_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let d = 3;
        let mk = |name: &str, n: usize, next: &mut dyn FnMut() -> u32| {
            Community::from_rows(
                name,
                d,
                (0..n).map(|i| (i as u64, (0..d).map(|_| next() % 8).collect::<Vec<u32>>())),
            )
            .unwrap()
        };
        let b = mk("B", 15, &mut next);
        let a = mk("A", 18, &mut next);
        let mut p = TrackedPair::new(b, a, 1).unwrap();
        assert_eq!(p.similarity().matched, oracle(&p));
        for step in 0..120 {
            let side = if next() % 2 == 0 { Side::B } else { Side::A };
            let pool = if side == Side::B {
                p.b().len()
            } else {
                p.a().len()
            };
            let vector: Vec<u32> = (0..d).map(|_| next() % 8).collect();
            match next() % 4 {
                0 if pool > 3 => {
                    // Remove a random existing user.
                    let idx = (next() as usize) % pool;
                    let id = if side == Side::B {
                        p.b().user_id(idx)
                    } else {
                        p.a().user_id(idx)
                    };
                    p.remove_user(side, id).unwrap();
                }
                1 => {
                    // Insert a brand-new user.
                    p.upsert_user(side, 10_000 + step as u64, &vector).unwrap();
                }
                _ => {
                    // Mutate a random existing user.
                    let idx = (next() as usize) % pool;
                    let id = if side == Side::B {
                        p.b().user_id(idx)
                    } else {
                        p.a().user_id(idx)
                    };
                    p.upsert_user(side, id, &vector).unwrap();
                }
            }
            assert_eq!(
                p.similarity().matched,
                oracle(&p),
                "diverged from ground truth at step {step}"
            );
        }
    }
}
