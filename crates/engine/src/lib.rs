//! # csj-engine — a multi-community CSJ service layer
//!
//! The paper's application scenarios (Section 1.2) all revolve around an
//! *online system* that evaluates CSJ over **many** community pairs:
//! business-partner search compares one brand against candidate brands,
//! broadcast recommendation ranks "a variety of community pairs", and
//! Section 3 prescribes the execution strategy:
//!
//! > "The usage of approximate method is to fast find a group of
//! > similar-enough community pairs for impending precise similarity
//! > computation. When such a group is found, the exact method applies
//! > ... The online system executes the respective recommendation case
//! > exclusively based on the precise results derived from the exact
//! > method."
//!
//! [`CsjEngine`] packages exactly that: a registry of communities, the
//! two-phase **screen (approximate) → refine (exact)** pipeline, cached
//! exact similarities with version-based invalidation, top-k
//! most-similar queries and in-place community updates (subscribers
//! arrive and counters grow continuously in a live system).
//!
//! For a pair that must be monitored under a *stream* of user updates,
//! [`TrackedPair`] maintains the exact similarity incrementally — one
//! `O(n·d)` candidate rescan plus a bounded matching repair per update,
//! instead of a full `O(|B|·|A|·d)` re-join.
//!
//! A live system also needs its queries *bounded*: every multi-pair
//! query has a `*_with_budget` variant taking a [`Budget`] (wall-clock
//! deadline, join cap, cooperative cancellation) and returning a
//! [`Partial`] that degrades gracefully on exhaustion instead of
//! erroring. Joins are panic-isolated per candidate, and the
//! `fault-injection` cargo feature compiles in a chaos-testing harness
//! ([`fault`]) that injects panics, errors, and slowdowns into joins.
//!
//! For fault *isolation* beyond the per-join boundary, the `*_sharded_*`
//! query variants partition the work into mass-balanced shards executed
//! under per-shard deadline slices with straggler hedging; a crashed or
//! stalled shard shrinks the result's [`Coverage`] report instead of
//! failing the query. Fault-free sharded runs are bit-identical to the
//! flat pipeline.

mod budget;
mod engine;
mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod obs;
mod plan;
mod tracked;

pub use budget::{Budget, BudgetExhausted, CancelToken, ExhaustReason, Partial};
pub use csj_core::plan::{CostTable, Exactness, PlanInput, QueryPlan};
pub use csj_core::{Coverage, ShardLayout};
pub use csj_obs::{CaptureCause, ForensicRecord, MetricsSnapshot, QueryTrace};
#[cfg(feature = "fault-injection")]
pub use csj_shard::ShardFaultPlan;
pub use csj_shard::{ShardConfig, ShardOutcome, ShardReport};
pub use engine::{
    CommunityHandle, CsjEngine, EngineConfig, EngineStats, PairScore, PairsCursor, PairsSweep,
    ScreenOutcome,
};
pub use error::EngineError;
pub use obs::ObsConfig;
pub use plan::{PlanSource, PlannerConfig, PlannerMode};
pub use tracked::{Side, TrackedPair};

#[cfg(test)]
mod tests {
    // Integration-style tests live in `engine.rs` and `tests/`.
}
