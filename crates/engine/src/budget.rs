//! Query budgets and graceful degradation.
//!
//! Production queries must never run away: a broadcast sweep over a big
//! catalog ([`CsjEngine::pairs_above`](crate::CsjEngine::pairs_above))
//! is quadratic in the number of communities, and even a single top-k
//! query fans out one join per candidate. A [`Budget`] bounds that work
//! three ways — wall-clock deadline, join-count cap, and a cooperative
//! [`CancelToken`] the caller can trip from another thread — and
//! budget-exhausted queries *degrade* instead of failing: they return a
//! [`Partial`] carrying everything scored so far plus a
//! [`BudgetExhausted`] marker saying why and how much work was left.
//!
//! Budgets are per-query: deadlines are absolute instants fixed at
//! construction, and the cancel flag never resets, so build a fresh
//! `Budget` for each query (and for each resume of a truncated sweep).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use csj_core::CancelToken;
use csj_core::Coverage;

/// Work limits for one engine query. The default ([`Budget::unlimited`])
/// imposes none.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_joins: Option<u64>,
    cancel: CancelToken,
}

impl Budget {
    /// No limits: queries run to completion (cancellation still works
    /// through [`cancel_token`](Budget::cancel_token)).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder-style: stop admitting new pairs once `timeout` has
    /// elapsed from *now*. Durations too large to represent saturate to
    /// "no deadline".
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Builder-style: stop admitting new pairs after `max` joins.
    pub fn with_max_joins(mut self, max: u64) -> Self {
        self.max_joins = Some(max);
        self
    }

    /// A clone of the budget's cancellation token. Trip it from any
    /// thread to stop the query at the next per-row check.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Trip the budget's cancellation token.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Why the budget no longer admits work, if so. `joins_done` is the
    /// number of joins the query has executed under this budget.
    pub fn exceeded(&self, joins_done: u64) -> Option<ExhaustReason> {
        // Own limits before the token: the engine trips the shared token
        // itself when a limit fires (to stop in-flight workers), and the
        // root cause should still be reported, not the side effect.
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(ExhaustReason::Deadline);
            }
        }
        if let Some(max) = self.max_joins {
            if joins_done >= max {
                return Some(ExhaustReason::MaxJoins);
            }
        }
        if self.cancel.is_cancelled() {
            return Some(ExhaustReason::Cancelled);
        }
        None
    }
}

/// Why a budget stopped a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustReason {
    /// The cancellation token was tripped.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The join-count cap was reached.
    MaxJoins,
}

impl ExhaustReason {
    /// The stable label used by metrics, traces and forensic records.
    pub fn label(self) -> &'static str {
        match self {
            ExhaustReason::Cancelled => "cancelled",
            ExhaustReason::Deadline => "deadline",
            ExhaustReason::MaxJoins => "max-joins",
        }
    }
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Marker attached to a truncated query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Which limit stopped the query.
    pub reason: ExhaustReason,
    /// Candidate pairs actually processed (scored, found inadmissible,
    /// or failed) before the budget ran out.
    pub pairs_done: u64,
    /// Candidate pairs the query never got to.
    pub pairs_skipped: u64,
}

/// A possibly-truncated query result: everything computed before the
/// budget ran out, plus the [`BudgetExhausted`] marker when it did.
/// Budget exhaustion is *graceful degradation*, not an error — the
/// value is always well-formed, just possibly incomplete.
///
/// Sharded queries additionally attach a [`Coverage`] report: how many
/// shards resolved each way and how many candidates were actually
/// screened. Budget exhaustion and coverage loss are independent — a
/// query can finish inside its budget yet still be incomplete because a
/// shard failed (`exhausted: None`, `coverage.is_partial()`).
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<T> {
    /// The (possibly truncated) result.
    pub value: T,
    /// `Some` when the budget ran out before the query finished.
    pub exhausted: Option<BudgetExhausted>,
    /// Shard completeness of a sharded query; `None` on unsharded paths.
    pub coverage: Option<Coverage>,
}

impl<T> Partial<T> {
    /// Wrap a result that ran to completion.
    pub fn complete(value: T) -> Self {
        Self {
            value,
            exhausted: None,
            coverage: None,
        }
    }

    /// Whether the query ran to completion — no budget truncation and
    /// (for sharded queries) no coverage loss.
    pub fn is_complete(&self) -> bool {
        self.exhausted.is_none() && !self.coverage.is_some_and(|c| c.is_partial())
    }

    /// Unwrap the value, discarding the exhaustion marker.
    pub fn into_value(self) -> T {
        self.value
    }
}

/// Internal helper: build the exhaustion marker for a finished query.
/// `None` when nothing was skipped (the query completed).
pub(crate) fn exhausted_marker(
    budget: &Budget,
    joins: &AtomicU64,
    pairs_done: u64,
    pairs_skipped: u64,
) -> Option<BudgetExhausted> {
    if pairs_skipped == 0 {
        return None;
    }
    // Deadline/cancellation are monotone and the join counter only
    // grows, so whatever reason stopped the query still holds here; the
    // fallback guards a pathological clock and never panics.
    let reason = budget
        .exceeded(joins.load(Ordering::Relaxed))
        .unwrap_or(ExhaustReason::Deadline);
    Some(BudgetExhausted {
        reason,
        pairs_done,
        pairs_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let b = Budget::unlimited();
        assert_eq!(b.exceeded(0), None);
        assert_eq!(b.exceeded(u64::MAX), None);
    }

    #[test]
    fn max_joins_cap_trips() {
        let b = Budget::unlimited().with_max_joins(3);
        assert_eq!(b.exceeded(2), None);
        assert_eq!(b.exceeded(3), Some(ExhaustReason::MaxJoins));
        assert_eq!(b.exceeded(4), Some(ExhaustReason::MaxJoins));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.exceeded(0), Some(ExhaustReason::Deadline));
    }

    #[test]
    fn distant_deadline_does_not_trip() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(b.exceeded(0), None);
        // A duration beyond Instant's range saturates to "no deadline"
        // rather than wrapping into the past.
        let b = Budget::unlimited().with_deadline(Duration::MAX);
        assert_eq!(b.exceeded(0), None);
    }

    #[test]
    fn cancellation_dominates() {
        let b = Budget::unlimited().with_max_joins(10);
        assert_eq!(b.exceeded(0), None);
        b.cancel();
        assert_eq!(b.exceeded(0), Some(ExhaustReason::Cancelled));
        // The token is shared with clones handed to workers.
        let b2 = Budget::unlimited();
        b2.cancel_token().cancel();
        assert_eq!(b2.exceeded(0), Some(ExhaustReason::Cancelled));
    }

    #[test]
    fn partial_helpers() {
        let p = Partial::complete(7);
        assert!(p.is_complete());
        assert_eq!(p.into_value(), 7);
        let q = Partial {
            value: vec![1, 2],
            exhausted: Some(BudgetExhausted {
                reason: ExhaustReason::MaxJoins,
                pairs_done: 2,
                pairs_skipped: 5,
            }),
            coverage: None,
        };
        assert!(!q.is_complete());
        assert_eq!(q.exhausted.unwrap().pairs_skipped, 5);
        // A sharded query inside its budget but with a lost shard is
        // partial through the coverage channel alone.
        let r = Partial {
            value: 0,
            exhausted: None,
            coverage: Some(Coverage {
                dispatched: 2,
                completed: 1,
                failed: 1,
                units_skipped: 3,
                ..Coverage::default()
            }),
        };
        assert!(!r.is_complete());
        let full = Partial {
            value: 0,
            exhausted: None,
            coverage: Some(Coverage {
                dispatched: 2,
                completed: 2,
                units_screened: 6,
                ..Coverage::default()
            }),
        };
        assert!(full.is_complete());
    }

    #[test]
    fn marker_reports_reason_and_counts() {
        let budget = Budget::unlimited().with_max_joins(1);
        let joins = AtomicU64::new(1);
        let marker = exhausted_marker(&budget, &joins, 1, 4).expect("skipped work");
        assert_eq!(marker.reason, ExhaustReason::MaxJoins);
        assert_eq!(marker.pairs_done, 1);
        assert_eq!(marker.pairs_skipped, 4);
        assert_eq!(exhausted_marker(&budget, &joins, 5, 0), None);
    }

    #[test]
    fn reason_display() {
        assert_eq!(ExhaustReason::Cancelled.to_string(), "cancelled");
        assert_eq!(ExhaustReason::Deadline.to_string(), "deadline");
        assert_eq!(ExhaustReason::MaxJoins.to_string(), "max-joins");
    }
}
