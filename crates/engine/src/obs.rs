//! Engine-side observability glue.
//!
//! Wires the `csj-obs` building blocks into the engine: [`EngineObs`]
//! owns the metrics registry (every `csj_*` time series, registered
//! once at engine construction) and the flight recorder;
//! [`QueryRecorder`] assembles one query's span tree
//! (`query → screen/refine/sweep → join → phase`) as the query runs.
//!
//! Everything is designed to stay on in release builds: the hot join
//! path updates atomics, span assembly appends to a mutex-guarded
//! vector once per *join* (never per candidate), and with
//! [`ObsConfig::enabled`]` = false` every hook is a branch on a bool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use csj_core::{Coverage, CsjMethod, JoinTelemetry, PhaseTimings};
use csj_obs::{
    Counter, FlightRecorder, ForensicRecord, Gauge, LatencyHistogram, LogHistogramCell,
    MetricsRegistry, MetricsSnapshot, QueryTrace, SlowQueryLog, Span,
};

use csj_core::plan::QueryPlan;

use crate::budget::ExhaustReason;
use crate::plan::PlanSource;

/// Observability configuration, part of
/// [`EngineConfig`](crate::EngineConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Master switch: `false` turns every hook into a no-op (no spans,
    /// no metric updates, no flight recording).
    pub enabled: bool,
    /// How many completed query traces the flight recorder retains.
    pub flight_capacity: usize,
    /// How many pathological traces the slow-query log retains
    /// (independent of the flight recorder, so a bad query survives
    /// eviction by healthy ones).
    pub slow_capacity: usize,
    /// Queries slower than this (or with a non-`completed` outcome)
    /// are captured in the slow-query log. `0` captures everything.
    pub slow_threshold_us: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            flight_capacity: 64,
            slow_capacity: 32,
            slow_threshold_us: 250_000,
        }
    }
}

/// Query kinds, used as the `kind` label of `csj_queries_total` and as
/// [`QueryTrace::kind`].
pub(crate) const QUERY_KINDS: [&str; 5] = [
    "similarity",
    "screen",
    "screen_and_refine",
    "top_k",
    "pairs_above",
];

/// Join spans retained per query trace; beyond this the trace records
/// only a `joins_dropped` count (a broadcast sweep over thousands of
/// pairs should not hold thousands of spans in memory).
const MAX_JOIN_SPANS: usize = 256;

fn method_index(method: CsjMethod) -> usize {
    CsjMethod::ALL
        .iter()
        .position(|&m| m == method)
        .expect("method in ALL")
}

fn reason_index(reason: ExhaustReason) -> usize {
    match reason {
        ExhaustReason::Cancelled => 0,
        ExhaustReason::Deadline => 1,
        ExhaustReason::MaxJoins => 2,
    }
}

/// The engine's observability state: one registry of `csj_*` time
/// series plus the flight recorder. Constructed once per engine.
pub(crate) struct EngineObs {
    enabled: bool,
    registry: MetricsRegistry,
    flight: FlightRecorder,
    slow: SlowQueryLog,
    joins: Vec<Arc<Counter>>,
    latency: Vec<Arc<LatencyHistogram>>,
    queries: Vec<Arc<Counter>>,
    budget_exhausted: Vec<Arc<Counter>>,
    plan_selected: Vec<Arc<Counter>>,
    plan_source: [Arc<Counter>; 2],
    plan_estimated_us: Arc<Counter>,
    plan_actual_us: Arc<Counter>,
    joins_cancelled: Arc<Counter>,
    join_panics: Arc<Counter>,
    faults: Arc<Counter>,
    cache_hits: Arc<Counter>,
    quarantined: Arc<Counter>,
    rows_driven: Arc<Counter>,
    candidates_streamed: Arc<Counter>,
    prune_min: Arc<Counter>,
    prune_max: Arc<Counter>,
    ev_match: Arc<Counter>,
    ev_no_match: Arc<Counter>,
    ev_no_overlap: Arc<Counter>,
    matcher_flushes: Arc<Counter>,
    matcher_edges: Arc<Counter>,
    cancel_polls: Arc<Counter>,
    encode_lane: [Arc<Counter>; 4],
    encode_tiles: Arc<Counter>,
    shard_dispatched: Arc<Counter>,
    shard_outcomes: [Arc<Counter>; 3],
    shard_hedged: Arc<Counter>,
    shard_units: [Arc<Counter>; 2],
    shard_latency: Arc<LatencyHistogram>,
    stream_depth: Arc<LogHistogramCell>,
    prune_depth: Arc<LogHistogramCell>,
    communities: Arc<Gauge>,
    cached_pairs: Arc<Gauge>,
}

impl std::fmt::Debug for EngineObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineObs")
            .field("enabled", &self.enabled)
            .field("flight_len", &self.flight.len())
            .finish_non_exhaustive()
    }
}

impl EngineObs {
    pub(crate) fn new(config: &ObsConfig) -> Self {
        let registry = MetricsRegistry::new();
        let joins = CsjMethod::ALL
            .iter()
            .map(|m| {
                registry.counter(
                    "csj_joins_total",
                    "Joins executed by the engine, by method.",
                    vec![("method", m.name().to_string())],
                )
            })
            .collect();
        let latency = CsjMethod::ALL
            .iter()
            .map(|m| {
                registry.latency(
                    "csj_join_latency_seconds",
                    "Join wall-clock latency (setup + pairing + matching), by method.",
                    vec![("method", m.name().to_string())],
                )
            })
            .collect();
        let queries = QUERY_KINDS
            .iter()
            .map(|kind| {
                registry.counter(
                    "csj_queries_total",
                    "Engine queries executed, by kind.",
                    vec![("kind", kind.to_string())],
                )
            })
            .collect();
        let budget_exhausted = ["cancelled", "deadline", "max-joins"]
            .iter()
            .map(|reason| {
                registry.counter(
                    "csj_budget_exhausted_total",
                    "Budgeted queries that ran out of budget, by reason.",
                    vec![("reason", reason.to_string())],
                )
            })
            .collect();
        let plan_selected = CsjMethod::ALL
            .iter()
            .map(|m| {
                registry.counter(
                    "csj_plan_selected_total",
                    "Auto plans resolved by the planner, by chosen method.",
                    vec![("method", m.name().to_string())],
                )
            })
            .collect();
        let plan_source = [
            registry.counter(
                "csj_plan_source_total",
                "Auto plans by estimate source (static table vs latency-refined).",
                vec![("source", "static".to_string())],
            ),
            registry.counter(
                "csj_plan_source_total",
                "Auto plans by estimate source (static table vs latency-refined).",
                vec![("source", "refined".to_string())],
            ),
        ];
        Self {
            enabled: config.enabled,
            flight: FlightRecorder::new(config.flight_capacity),
            slow: SlowQueryLog::new(config.slow_capacity, config.slow_threshold_us),
            joins,
            latency,
            queries,
            budget_exhausted,
            plan_selected,
            plan_source,
            plan_estimated_us: registry.counter(
                "csj_plan_estimated_us_total",
                "Sum of the planner's cost estimates for resolved Auto plans, microseconds.",
                vec![],
            ),
            plan_actual_us: registry.counter(
                "csj_plan_actual_us_total",
                "Sum of measured join latencies for resolved Auto plans, microseconds.",
                vec![],
            ),
            joins_cancelled: registry.counter(
                "csj_joins_cancelled_total",
                "Joins truncated mid-flight by cooperative cancellation.",
                vec![],
            ),
            join_panics: registry.counter(
                "csj_join_panics_total",
                "Joins that panicked and were contained at the per-candidate boundary.",
                vec![],
            ),
            faults: registry.counter(
                "csj_faults_total",
                "Injected faults fired (fault-injection builds only).",
                vec![],
            ),
            cache_hits: registry.counter(
                "csj_cache_hits_total",
                "Exact-similarity queries served from the cache.",
                vec![],
            ),
            quarantined: registry.counter(
                "csj_data_quarantined_total",
                "Malformed records skipped by quarantine-mode data loads.",
                vec![],
            ),
            rows_driven: registry.counter(
                "csj_rows_driven_total",
                "B rows that entered a pairing loop.",
                vec![],
            ),
            candidates_streamed: registry.counter(
                "csj_candidates_streamed_total",
                "Candidate pairs that survived cheap pruning and were fully judged.",
                vec![],
            ),
            prune_min: registry.counter(
                "csj_prune_events_total",
                "Kernel prune events, by kind.",
                vec![("kind", "min".to_string())],
            ),
            prune_max: registry.counter(
                "csj_prune_events_total",
                "Kernel prune events, by kind.",
                vec![("kind", "max".to_string())],
            ),
            ev_match: registry.counter(
                "csj_match_events_total",
                "Full-comparison outcomes, by kind.",
                vec![("kind", "match".to_string())],
            ),
            ev_no_match: registry.counter(
                "csj_match_events_total",
                "Full-comparison outcomes, by kind.",
                vec![("kind", "no_match".to_string())],
            ),
            ev_no_overlap: registry.counter(
                "csj_match_events_total",
                "Full-comparison outcomes, by kind.",
                vec![("kind", "no_overlap".to_string())],
            ),
            matcher_flushes: registry.counter(
                "csj_matcher_flushes_total",
                "One-to-one matcher invocations (whole-graph and segment flushes).",
                vec![],
            ),
            matcher_edges: registry.counter(
                "csj_matcher_edges_total",
                "Edges handed to the one-to-one matcher.",
                vec![],
            ),
            cancel_polls: registry.counter(
                "csj_cancel_polls_total",
                "Cooperative cancellation polls performed by the kernel.",
                vec![],
            ),
            encode_lane: ["scalar", "u8", "u16", "u32"].map(|lane| {
                registry.counter(
                    "csj_encode_lane_total",
                    "Joins by the counter lane the quantized kernel selected.",
                    vec![("lane", lane.to_string())],
                )
            }),
            encode_tiles: registry.counter(
                "csj_encode_tiles_total",
                "L1-sized A tiles walked by cache-blocked kernel scans.",
                vec![],
            ),
            shard_dispatched: registry.counter(
                "csj_shard_dispatched_total",
                "Shard tasks handed to the shard executor.",
                vec![],
            ),
            // The three shard fates: dispatched == completed + failed +
            // cancelled (the shard identity, lint-checked like the
            // service's four fates).
            shard_outcomes: ["completed", "failed", "cancelled"].map(|fate| {
                registry.counter(
                    "csj_shard_outcomes_total",
                    "Shard tasks resolved, by fate (dispatched == completed + failed + cancelled).",
                    vec![("fate", fate.to_string())],
                )
            }),
            shard_hedged: registry.counter(
                "csj_shard_hedged_total",
                "Shards whose winning result came from a hedged re-dispatch (subset of completed).",
                vec![],
            ),
            shard_units: ["screened", "skipped"].map(|fate| {
                registry.counter(
                    "csj_shard_units_total",
                    "Work units (candidates or pairs) of sharded queries, by fate.",
                    vec![("fate", fate.to_string())],
                )
            }),
            shard_latency: registry.latency(
                "csj_shard_latency_seconds",
                "Per-shard wall-clock latency (winning attempt, or longest failed one).",
                vec![],
            ),
            stream_depth: registry.log_histogram(
                "csj_candidate_stream_depth",
                "Distribution of candidates streamed per driven B row (log2 buckets).",
                vec![],
            ),
            prune_depth: registry.log_histogram(
                "csj_prune_depth",
                "Distribution of prune events per driven B row (log2 buckets).",
                vec![],
            ),
            communities: registry.gauge(
                "csj_communities",
                "Communities currently registered.",
                vec![],
            ),
            cached_pairs: registry.gauge(
                "csj_cached_pairs",
                "Exact similarities currently cached.",
                vec![],
            ),
            registry,
        }
    }

    /// Fold one completed join into the metrics: per-method count and
    /// latency plus every kernel telemetry counter. A non-zero
    /// `trace_id` becomes the latency bucket's exemplar, linking the
    /// hot histogram cell back to a reconstructable trace.
    pub(crate) fn on_join(
        &self,
        method: CsjMethod,
        telemetry: &JoinTelemetry,
        timings: &PhaseTimings,
        cancelled: bool,
        trace_id: u64,
    ) {
        if !self.enabled {
            return;
        }
        let idx = method_index(method);
        self.joins[idx].inc();
        let us = timings.total().as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency[idx].observe_us_with_exemplar(us, trace_id);
        if cancelled {
            self.joins_cancelled.inc();
        }
        self.rows_driven.add(telemetry.rows_driven);
        self.candidates_streamed.add(telemetry.candidates_streamed);
        self.prune_min.add(telemetry.events.min_prune);
        self.prune_max.add(telemetry.events.max_prune);
        self.ev_match.add(telemetry.events.matches);
        self.ev_no_match.add(telemetry.events.no_match);
        self.ev_no_overlap.add(telemetry.events.no_overlap);
        self.matcher_flushes.add(telemetry.matcher_flushes);
        self.matcher_edges.add(telemetry.matcher_edges);
        self.cancel_polls.add(telemetry.cancel_polls);
        let lane_idx = match telemetry.lane_bits {
            8 => 1,
            16 => 2,
            32 => 3,
            _ => 0,
        };
        self.encode_lane[lane_idx].inc();
        self.encode_tiles.add(telemetry.a_tiles);
        self.stream_depth
            .merge(&telemetry.stream_depth_hist, telemetry.candidates_streamed);
        self.prune_depth.merge(
            &telemetry.prune_depth_hist,
            telemetry.events.min_prune + telemetry.events.max_prune,
        );
    }

    /// Count one resolved `Auto` plan: the chosen method, whether the
    /// estimates were static or latency-refined, and the estimated vs
    /// actual cost totals (their ratio is the model's live accuracy).
    pub(crate) fn on_plan(&self, plan: &QueryPlan, source: PlanSource, actual_us: u64) {
        if !self.enabled {
            return;
        }
        self.plan_selected[method_index(plan.chosen)].inc();
        let source_idx = match source {
            PlanSource::Static => 0,
            PlanSource::Refined => 1,
        };
        self.plan_source[source_idx].inc();
        self.plan_estimated_us
            .add(plan.estimated_us.max(0.0) as u64);
        self.plan_actual_us.add(actual_us);
    }

    pub(crate) fn on_query(&self, kind: &'static str) {
        if !self.enabled {
            return;
        }
        let idx = QUERY_KINDS
            .iter()
            .position(|&k| k == kind)
            .expect("known query kind");
        self.queries[idx].inc();
    }

    pub(crate) fn on_join_panicked(&self) {
        if self.enabled {
            self.join_panics.inc();
        }
    }

    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    pub(crate) fn on_fault(&self) {
        if self.enabled {
            self.faults.inc();
        }
    }

    pub(crate) fn on_cache_hit(&self) {
        if self.enabled {
            self.cache_hits.inc();
        }
    }

    pub(crate) fn on_quarantined(&self, n: u64) {
        if self.enabled {
            self.quarantined.add(n);
        }
    }

    pub(crate) fn on_budget_exhausted(&self, reason: ExhaustReason) {
        if self.enabled {
            self.budget_exhausted[reason_index(reason)].inc();
        }
    }

    /// Fold one sharded query's coverage into the `csj_shard_*` family;
    /// `shard_elapsed_us` carries the per-shard latencies. The counter
    /// deltas preserve the coverage identity by construction, so
    /// `csj_shard_dispatched_total` always equals the sum of the three
    /// `csj_shard_outcomes_total` fates.
    pub(crate) fn on_shards(&self, coverage: &Coverage, shard_elapsed_us: &[u64]) {
        if !self.enabled {
            return;
        }
        self.shard_dispatched.add(coverage.dispatched);
        self.shard_outcomes[0].add(coverage.completed);
        self.shard_outcomes[1].add(coverage.failed);
        self.shard_outcomes[2].add(coverage.cancelled);
        self.shard_hedged.add(coverage.hedged);
        self.shard_units[0].add(coverage.units_screened);
        self.shard_units[1].add(coverage.units_skipped);
        for &us in shard_elapsed_us {
            self.shard_latency.observe_us_with_exemplar(us, 0);
        }
    }

    /// Point-in-time snapshot, with the registry-size gauges refreshed
    /// from the caller's current counts.
    pub(crate) fn snapshot(&self, communities: usize, cached_pairs: usize) -> MetricsSnapshot {
        self.communities.set(communities as u64);
        self.cached_pairs.set(cached_pairs as u64);
        self.registry.snapshot()
    }

    /// Start recording a query of `kind`, reserving its flight-recorder
    /// id up front so in-flight metric exemplars can reference the
    /// trace before it is filed.
    pub(crate) fn start_recorder(&self, kind: &'static str) -> QueryRecorder {
        let id = if self.enabled {
            self.flight.reserve_id()
        } else {
            0
        };
        QueryRecorder::start_with_id(kind, self.enabled, id)
    }

    /// Store a completed query trace in the flight recorder, offering
    /// it to the slow-query log first (the log clones only pathological
    /// traces; the healthy path is a threshold check).
    pub(crate) fn record_trace(&self, mut trace: QueryTrace) {
        if !self.enabled {
            return;
        }
        if trace.id == 0 {
            trace.id = self.flight.reserve_id();
        }
        self.slow.offer(&trace);
        self.flight.record_with_id(trace.id, trace);
    }

    /// The most recent `n` traces, oldest first.
    pub(crate) fn traces(&self, n: usize) -> Vec<QueryTrace> {
        self.flight.last(n)
    }

    /// The most recent `n` forensic records, oldest first.
    pub(crate) fn slow_queries(&self, n: usize) -> Vec<ForensicRecord> {
        self.slow.last(n)
    }

    /// The slow-query log itself (capture statistics, threshold).
    pub(crate) fn slow_log(&self) -> &SlowQueryLog {
        &self.slow
    }
}

/// Assembles one query's span tree while the query runs. Join spans are
/// appended from (possibly parallel) workers under a mutex — once per
/// join, never per candidate; [`QueryRecorder::end_phase`] folds the
/// joins gathered so far into a named phase span.
pub(crate) struct QueryRecorder {
    on: bool,
    kind: &'static str,
    trace_id: u64,
    t0: Instant,
    join_spans: Mutex<Vec<Span>>,
    phases: Mutex<Vec<Span>>,
    joins_dropped: AtomicU64,
    joins_recorded: AtomicU64,
    telemetry: Mutex<JoinTelemetry>,
    budget: Mutex<Option<(&'static str, u64, u64)>>,
    coverage: Mutex<Option<Coverage>>,
}

impl QueryRecorder {
    /// Start recording a query of `kind` with no reserved id. With
    /// `on = false` every method is a no-op and
    /// [`QueryRecorder::finish`] returns `None`.
    #[cfg(test)]
    pub(crate) fn start(kind: &'static str, on: bool) -> Self {
        Self::start_with_id(kind, on, 0)
    }

    /// Start recording with a pre-reserved flight-recorder id, so the
    /// trace id is known (for metric exemplars) while the query runs.
    pub(crate) fn start_with_id(kind: &'static str, on: bool, trace_id: u64) -> Self {
        Self {
            on,
            kind,
            trace_id,
            t0: Instant::now(),
            join_spans: Mutex::new(Vec::new()),
            phases: Mutex::new(Vec::new()),
            joins_dropped: AtomicU64::new(0),
            joins_recorded: AtomicU64::new(0),
            telemetry: Mutex::new(JoinTelemetry::default()),
            budget: Mutex::new(None),
            coverage: Mutex::new(None),
        }
    }

    /// The reserved flight-recorder id (`0` when recording is off).
    pub(crate) fn trace_id(&self) -> u64 {
        if self.on {
            self.trace_id
        } else {
            0
        }
    }

    /// Microseconds since the query started.
    pub(crate) fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Record one join as a span (with `setup`/`pairing`/`matching`
    /// phase children) under the current phase.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_join(
        &self,
        method: CsjMethod,
        b_size: usize,
        a_size: usize,
        telemetry: &JoinTelemetry,
        timings: &PhaseTimings,
        outcome: &str,
        start_us: u64,
    ) {
        if !self.on {
            return;
        }
        // The per-query telemetry roll-up survives the span cap: a
        // forensic record still reports the whole query's work even
        // when most join spans were dropped.
        self.joins_recorded.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(telemetry);
        let mut joins = self.join_spans.lock().unwrap_or_else(|e| e.into_inner());
        if joins.len() >= MAX_JOIN_SPANS {
            self.joins_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let encoding = match telemetry.lane_bits {
            0 => "scalar".to_string(),
            bits => format!("u{bits}"),
        };
        let mut span = Span::new("join")
            .at(start_us, timings.total().as_micros() as u64)
            .attr("method", method.name())
            .attr("b_size", b_size)
            .attr("a_size", a_size)
            .attr("encoding", encoding)
            .attr("a_tiles", telemetry.a_tiles)
            .attr("outcome", outcome);
        let mut offset = start_us;
        for (name, d) in [
            ("setup", timings.setup),
            ("pairing", timings.pairing),
            ("matching", timings.matching),
        ] {
            let us = d.as_micros() as u64;
            if us > 0 {
                span.push_child(Span::new(name).at(offset, us));
            }
            offset += us;
        }
        joins.push(span);
    }

    /// Record one resolved `Auto` plan as a span next to its join:
    /// chosen method, estimated vs actual cost, the rejected
    /// alternatives with their estimates, and the cost-table provenance.
    pub(crate) fn record_plan(
        &self,
        plan: &QueryPlan,
        source: PlanSource,
        actual_us: u64,
        start_us: u64,
    ) {
        if !self.on {
            return;
        }
        let mut joins = self.join_spans.lock().unwrap_or_else(|e| e.into_inner());
        if joins.len() >= MAX_JOIN_SPANS {
            self.joins_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let span = Span::new("plan")
            .at(start_us, 0)
            .attr("method", plan.chosen.name())
            .attr("source", source.label())
            .attr("estimated_us", plan.estimated_us as u64)
            .attr("actual_us", actual_us)
            .attr("alternatives", plan.rejected_summary())
            .attr(
                "cost_table",
                format!("v{} ({})", plan.table_version, plan.table_source),
            );
        joins.push(span);
    }

    /// Close the phase that started at `start_us`: every join recorded
    /// since the previous phase boundary becomes a child of one
    /// `name` span.
    pub(crate) fn end_phase(&self, name: &'static str, start_us: u64) {
        if !self.on {
            return;
        }
        let children =
            std::mem::take(&mut *self.join_spans.lock().unwrap_or_else(|e| e.into_inner()));
        let mut span = Span::new(name)
            .at(start_us, self.now_us().saturating_sub(start_us))
            .attr("joins", children.len());
        span.children = children;
        self.phases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span);
    }

    /// Note the budget exhaustion state, surfaced as root-span
    /// attributes (`budget_reason`, `pairs_done`, `pairs_skipped`).
    pub(crate) fn note_budget(&self, reason: &'static str, pairs_done: u64, pairs_skipped: u64) {
        if !self.on {
            return;
        }
        *self.budget.lock().unwrap_or_else(|e| e.into_inner()) =
            Some((reason, pairs_done, pairs_skipped));
    }

    /// Record one resolved shard as a span (folded into the enclosing
    /// `shards` phase by [`QueryRecorder::end_phase`]).
    pub(crate) fn record_shard(
        &self,
        shard: usize,
        outcome: &'static str,
        members: usize,
        attempts: u32,
        elapsed_us: u64,
        start_us: u64,
    ) {
        if !self.on {
            return;
        }
        let mut joins = self.join_spans.lock().unwrap_or_else(|e| e.into_inner());
        if joins.len() >= MAX_JOIN_SPANS {
            self.joins_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        joins.push(
            Span::new("shard")
                .at(start_us, elapsed_us)
                .attr("shard", shard)
                .attr("outcome", outcome)
                .attr("members", members)
                .attr("attempts", u64::from(attempts)),
        );
    }

    /// Note a sharded query's coverage, surfaced as root-span
    /// attributes (`shards_dispatched`, `shards_completed`, ...).
    pub(crate) fn note_coverage(&self, coverage: Coverage) {
        if !self.on {
            return;
        }
        *self.coverage.lock().unwrap_or_else(|e| e.into_inner()) = Some(coverage);
    }

    /// Finish the query and build its trace, carrying the pre-reserved
    /// id and a telemetry roll-up on the root span. `None` when
    /// recording was off.
    pub(crate) fn finish(self, outcome: String) -> Option<QueryTrace> {
        if !self.on {
            return None;
        }
        let elapsed = self.now_us();
        let mut root = Span::new("query").at(0, elapsed);
        let joins = self.joins_recorded.load(Ordering::Relaxed);
        if joins > 0 {
            let tel = self
                .telemetry
                .into_inner()
                .unwrap_or_else(|e| e.into_inner());
            root = root
                .attr("joins", joins)
                .attr("rows_driven", tel.rows_driven)
                .attr("candidates_streamed", tel.candidates_streamed)
                .attr("matcher_edges", tel.matcher_edges)
                .attr("prune_events", tel.events.min_prune + tel.events.max_prune);
        }
        if let Some((reason, done, skipped)) =
            *self.budget.lock().unwrap_or_else(|e| e.into_inner())
        {
            root = root
                .attr("budget_reason", reason)
                .attr("pairs_done", done)
                .attr("pairs_skipped", skipped);
        }
        if let Some(c) = *self.coverage.lock().unwrap_or_else(|e| e.into_inner()) {
            root = root
                .attr("shards_dispatched", c.dispatched)
                .attr("shards_completed", c.completed)
                .attr("shards_failed", c.failed)
                .attr("shards_cancelled", c.cancelled)
                .attr("shards_hedged", c.hedged)
                .attr("units_screened", c.units_screened)
                .attr("units_skipped", c.units_skipped);
        }
        let dropped = self.joins_dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            root = root.attr("joins_dropped", dropped);
        }
        root.children = self.phases.into_inner().unwrap_or_else(|e| e.into_inner());
        // Joins recorded outside any phase (single-join queries) attach
        // directly to the root.
        let loose = self
            .join_spans
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        root.children.extend(loose);
        Some(QueryTrace {
            id: self.trace_id,
            kind: self.kind,
            outcome,
            root,
        })
    }
}

/// Outcome label shared by traces and tests: `completed`, or
/// `exhausted:<reason>`.
pub(crate) fn outcome_label(exhausted: Option<ExhaustReason>) -> String {
    match exhausted {
        None => "completed".to_string(),
        Some(reason) => format!("exhausted:{reason}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_recorder_produces_nothing() {
        let rec = QueryRecorder::start("similarity", false);
        rec.record_join(
            CsjMethod::ApMinMax,
            4,
            8,
            &JoinTelemetry::default(),
            &PhaseTimings::default(),
            "ok",
            0,
        );
        rec.end_phase("screen", 0);
        assert!(rec.finish("completed".into()).is_none());
    }

    #[test]
    fn phases_capture_their_joins() {
        let rec = QueryRecorder::start("top_k", true);
        let timings = PhaseTimings {
            setup: Duration::from_micros(5),
            pairing: Duration::from_micros(11),
            matching: Duration::from_micros(7),
        };
        let tel = JoinTelemetry::default();
        rec.record_join(CsjMethod::ApMinMax, 4, 8, &tel, &timings, "ok", 1);
        rec.record_join(CsjMethod::ApMinMax, 4, 6, &tel, &timings, "ok", 20);
        rec.end_phase("screen", 0);
        rec.record_join(CsjMethod::ExMinMax, 4, 8, &tel, &timings, "ok", 40);
        rec.end_phase("refine", 40);
        let trace = rec.finish("completed".into()).expect("recording on");
        assert_eq!(trace.kind, "top_k");
        let screen = trace.root.find("screen").expect("screen phase");
        assert_eq!(screen.children.len(), 2);
        let refine = trace.root.find("refine").expect("refine phase");
        assert_eq!(refine.children.len(), 1);
        let join = refine.children[0].clone();
        assert_eq!(join.name, "join");
        assert_eq!(join.elapsed_us, 23, "setup + pairing + matching");
        assert!(join.find("setup").is_some());
        assert!(join.find("pairing").is_some());
        assert!(join.find("matching").is_some());
    }

    #[test]
    fn join_span_cap_counts_drops() {
        let rec = QueryRecorder::start("pairs_above", true);
        for i in 0..(MAX_JOIN_SPANS + 3) {
            rec.record_join(
                CsjMethod::ApMinMax,
                1,
                1,
                &JoinTelemetry::default(),
                &PhaseTimings::default(),
                "ok",
                i as u64,
            );
        }
        rec.end_phase("sweep", 0);
        let trace = rec.finish("completed".into()).unwrap();
        assert_eq!(
            trace.root.find("sweep").unwrap().children.len(),
            MAX_JOIN_SPANS
        );
        assert_eq!(
            trace.root.get_attr("joins_dropped"),
            Some(&csj_obs::AttrValue::U64(3))
        );
    }

    #[test]
    fn obs_hooks_are_inert_when_disabled() {
        let obs = EngineObs::new(&ObsConfig {
            enabled: false,
            flight_capacity: 4,
            slow_capacity: 4,
            slow_threshold_us: 0,
        });
        obs.on_query("similarity");
        obs.on_join(
            CsjMethod::ApMinMax,
            &JoinTelemetry::default(),
            &PhaseTimings::default(),
            false,
            0,
        );
        obs.on_join_panicked();
        obs.on_budget_exhausted(ExhaustReason::Deadline);
        let snap = obs.snapshot(2, 1);
        assert_eq!(
            snap.counter_value("csj_queries_total", &[("kind", "similarity")]),
            0
        );
        assert_eq!(snap.counter_value("csj_join_panics_total", &[]), 0);
        // Gauges still reflect reality (they are set at snapshot time).
        assert_eq!(snap.counter_value("csj_communities", &[]), 2);
    }

    #[test]
    fn pathological_traces_land_in_the_slow_log() {
        let obs = EngineObs::new(&ObsConfig {
            enabled: true,
            flight_capacity: 4,
            slow_capacity: 4,
            slow_threshold_us: 60_000_000, // only bad outcomes capture
        });
        let rec = obs.start_recorder("similarity");
        let id = rec.trace_id();
        assert!(id > 0, "flight id reserved up front");
        let trace = rec
            .finish("exhausted:deadline".into())
            .expect("recording on");
        assert_eq!(trace.id, id);
        obs.record_trace(trace);

        let healthy = obs.start_recorder("similarity");
        let healthy_id = healthy.trace_id();
        obs.record_trace(healthy.finish("completed".into()).unwrap());

        let slow = obs.slow_queries(8);
        assert_eq!(slow.len(), 1, "healthy query not captured");
        assert_eq!(slow[0].trace.id, id);
        // Both traces are in the flight recorder, in id order.
        let ids: Vec<u64> = obs.traces(8).iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![id, healthy_id]);
        assert_eq!(obs.slow_log().offered(), 2);
        assert_eq!(obs.slow_log().captured(), 1);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn finish_rolls_up_telemetry_and_budget() {
        let rec = QueryRecorder::start("screen", true);
        let mut tel = JoinTelemetry::default();
        tel.rows_driven = 3;
        tel.candidates_streamed = 9;
        tel.matcher_edges = 5;
        tel.events.min_prune = 2;
        let timings = PhaseTimings::default();
        rec.record_join(CsjMethod::ApMinMax, 4, 8, &tel, &timings, "ok", 0);
        rec.record_join(CsjMethod::ApMinMax, 4, 6, &tel, &timings, "ok", 10);
        rec.note_budget("deadline", 7, 2);
        let trace = rec
            .finish("exhausted:deadline".into())
            .expect("recording on");
        use csj_obs::AttrValue;
        assert_eq!(trace.root.get_attr("joins"), Some(&AttrValue::U64(2)));
        assert_eq!(trace.root.get_attr("rows_driven"), Some(&AttrValue::U64(6)));
        assert_eq!(
            trace.root.get_attr("candidates_streamed"),
            Some(&AttrValue::U64(18))
        );
        assert_eq!(
            trace.root.get_attr("matcher_edges"),
            Some(&AttrValue::U64(10))
        );
        assert_eq!(
            trace.root.get_attr("prune_events"),
            Some(&AttrValue::U64(4))
        );
        assert_eq!(
            trace.root.get_attr("budget_reason"),
            Some(&AttrValue::Str("deadline".into()))
        );
        assert_eq!(trace.root.get_attr("pairs_done"), Some(&AttrValue::U64(7)));
        assert_eq!(
            trace.root.get_attr("pairs_skipped"),
            Some(&AttrValue::U64(2))
        );
    }

    #[test]
    fn outcome_labels() {
        assert_eq!(outcome_label(None), "completed");
        assert_eq!(
            outcome_label(Some(ExhaustReason::MaxJoins)),
            "exhausted:max-joins"
        );
        assert_eq!(
            outcome_label(Some(ExhaustReason::Deadline)),
            "exhausted:deadline"
        );
    }
}
