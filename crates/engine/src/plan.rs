//! The engine's planner stage: resolves [`CsjMethod::Auto`] ahead of
//! the join kernel and closes the feedback loop.
//!
//! The static half lives in `csj_core::plan` (feature vector, seeded
//! [`CostTable`], deterministic [`CostTable::plan`]). This module adds
//! what only the engine has — measured join latencies. Every join the
//! engine runs (planned or explicitly chosen) reports its actual
//! wall-clock back through [`Planner::observe`], which maintains a
//! per-method EWMA of the actual/estimated ratio. Subsequent plans use
//! the corrected estimates, so a machine where SuperEGO's setup is
//! twice the seed's assumption stops picking it without any offline
//! recalibration.
//!
//! [`PlannerMode::Frozen`] switches the feedback off: plans come from
//! the configured table alone and observations are discarded — the
//! deterministic mode the planner tests and the frozen parity suite
//! rely on.

use std::sync::Mutex;

use csj_core::plan::{CostTable, PlanInput, QueryPlan};
use csj_core::CsjMethod;

/// Whether the planner refines its cost model online.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// Refine estimates from measured join latencies (default).
    Adaptive,
    /// Plan from the configured table only; ignore observations.
    /// Deterministic: the same input always yields the same plan.
    Frozen,
}

/// Planner configuration, part of [`crate::EngineConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Online-feedback switch.
    pub mode: PlannerMode,
    /// The base cost table (seeded, or loaded from a calibrated
    /// `csj-cost-table` file).
    pub table: CostTable,
    /// EWMA smoothing factor for the actual/estimated latency ratio,
    /// in `(0, 1]`; higher adapts faster but is noisier.
    pub ewma_alpha: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            mode: PlannerMode::Adaptive,
            table: CostTable::seeded(),
            ewma_alpha: 0.2,
        }
    }
}

/// Where a plan's estimates came from, surfaced in metrics and traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// The configured cost table alone — frozen mode, or cold start
    /// (no latency observations for the chosen method yet).
    Static,
    /// The table corrected by observed join latencies.
    Refined,
}

impl PlanSource {
    /// Stable label used as the `source` value of
    /// `csj_plan_source_total` and in plan spans.
    pub fn label(self) -> &'static str {
        match self {
            PlanSource::Static => "static",
            PlanSource::Refined => "refined",
        }
    }
}

/// Per-method feedback state: EWMA of `actual_us / estimated_us`.
#[derive(Debug, Clone, Copy)]
struct Correction {
    ratio: f64,
    samples: u64,
}

impl Default for Correction {
    fn default() -> Self {
        Self {
            ratio: 1.0,
            samples: 0,
        }
    }
}

/// The engine's planner: a static cost table plus online corrections.
/// Interior-mutable (`&self` observe/plan) because joins report
/// latencies from parallel screening workers.
#[derive(Debug)]
pub(crate) struct Planner {
    config: PlannerConfig,
    corrections: Mutex<[Correction; CsjMethod::ALL.len()]>,
}

fn method_index(method: CsjMethod) -> usize {
    CsjMethod::ALL
        .iter()
        .position(|&m| m == method)
        .expect("concrete method in ALL")
}

impl Planner {
    pub(crate) fn new(config: PlannerConfig) -> Self {
        Self {
            config,
            corrections: Mutex::new([Correction::default(); CsjMethod::ALL.len()]),
        }
    }

    /// The configured table with each observed method's weight row
    /// scaled by its EWMA correction. Identity in frozen mode or before
    /// any observation (cold start): the static table decides alone.
    fn corrected_table(&self) -> CostTable {
        let mut table = self.config.table.clone();
        if self.config.mode == PlannerMode::Frozen {
            return table;
        }
        let corrections = self.corrections.lock().unwrap_or_else(|e| e.into_inner());
        for (row, c) in table.weights.iter_mut().zip(corrections.iter()) {
            if c.samples > 0 {
                for w in row.iter_mut() {
                    *w *= c.ratio;
                }
            }
        }
        table
    }

    /// Resolve `input` to a concrete plan, reporting whether refined
    /// estimates participated (the chosen method has latency history)
    /// or the static table decided (frozen mode / cold start).
    pub(crate) fn plan(&self, input: &PlanInput) -> (QueryPlan, PlanSource) {
        let plan = self.corrected_table().plan(input);
        let source = if self.config.mode == PlannerMode::Frozen {
            PlanSource::Static
        } else {
            let corrections = self.corrections.lock().unwrap_or_else(|e| e.into_inner());
            if corrections[method_index(plan.chosen)].samples > 0 {
                PlanSource::Refined
            } else {
                PlanSource::Static
            }
        };
        (plan, source)
    }

    /// The degradation ladder for `primary` on `input`, ranked by the
    /// corrected cost model (see [`CostTable::degradation_ladder`]).
    #[cfg(test)]
    pub(crate) fn ladder(&self, primary: CsjMethod, input: &PlanInput) -> Vec<CsjMethod> {
        self.ladder_with_source(primary, input).0
    }

    /// [`Planner::ladder`], plus whether latency feedback for `primary`
    /// participated in the ranking ([`PlanSource::Refined`]) or the
    /// static table decided alone (frozen mode / cold start). This is
    /// the provenance the service threads into degraded-request traces.
    pub(crate) fn ladder_with_source(
        &self,
        primary: CsjMethod,
        input: &PlanInput,
    ) -> (Vec<CsjMethod>, PlanSource) {
        let ladder = self.corrected_table().degradation_ladder(primary, input);
        let source = if self.config.mode == PlannerMode::Frozen {
            PlanSource::Static
        } else {
            let corrections = self.corrections.lock().unwrap_or_else(|e| e.into_inner());
            if corrections[method_index(primary)].samples > 0 {
                PlanSource::Refined
            } else {
                PlanSource::Static
            }
        };
        (ladder, source)
    }

    /// Fold one measured join into the feedback state. `estimated_us`
    /// must be the *base table's* estimate for the same input (the
    /// correction is a plain ratio on top of it, not on top of itself).
    /// No-op in frozen mode.
    pub(crate) fn observe(&self, method: CsjMethod, estimated_us: f64, actual_us: f64) {
        if self.config.mode == PlannerMode::Frozen {
            return;
        }
        if method == CsjMethod::Auto || !estimated_us.is_finite() || estimated_us <= 0.0 {
            return;
        }
        // Clamp the per-sample ratio: one cache-cold outlier must not
        // swing the model by orders of magnitude.
        let ratio = (actual_us.max(1.0) / estimated_us).clamp(0.01, 100.0);
        let mut corrections = self.corrections.lock().unwrap_or_else(|e| e.into_inner());
        let c = &mut corrections[method_index(method)];
        if c.samples == 0 {
            c.ratio = ratio;
        } else {
            let alpha = self.config.ewma_alpha.clamp(0.0, 1.0);
            c.ratio += alpha * (ratio - c.ratio);
        }
        c.samples += 1;
    }

    /// The base table's estimate for `method` on `input` — the
    /// reference [`Planner::observe`] expects.
    pub(crate) fn base_estimate(&self, method: CsjMethod, input: &PlanInput) -> f64 {
        self.config.table.estimate(method, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_core::plan::Exactness;

    fn input() -> PlanInput {
        PlanInput::new(400, 440, 27, 2, Exactness::Exact)
    }

    #[test]
    fn cold_start_plans_from_the_static_table() {
        let planner = Planner::new(PlannerConfig::default());
        let static_plan = CostTable::seeded().plan(&input());
        let (plan, source) = planner.plan(&input());
        assert_eq!(source, PlanSource::Static);
        assert_eq!(plan, static_plan);
    }

    #[test]
    fn observations_refine_subsequent_plans() {
        let planner = Planner::new(PlannerConfig::default());
        let (before, _) = planner.plan(&input());
        // Report the chosen method as 50x slower than estimated, enough
        // times for the EWMA to converge near the true ratio.
        for _ in 0..50 {
            let est = planner.base_estimate(before.chosen, &input());
            planner.observe(before.chosen, est, est * 50.0);
        }
        let (after, source) = planner.plan(&input());
        assert_ne!(after.chosen, before.chosen, "planner must steer away");
        // The demoted method's estimate grew by roughly the ratio.
        let demoted = after
            .candidates
            .iter()
            .find(|c| c.method == before.chosen)
            .expect("still a candidate");
        assert!(demoted.estimated_us > before.estimated_us * 10.0);
        // The newly chosen method has no history yet -> still static.
        assert_eq!(source, PlanSource::Static);
        for _ in 0..3 {
            let est = planner.base_estimate(after.chosen, &input());
            planner.observe(after.chosen, est, est);
        }
        let (_, source) = planner.plan(&input());
        assert_eq!(source, PlanSource::Refined);
    }

    #[test]
    fn frozen_mode_ignores_observations() {
        let planner = Planner::new(PlannerConfig {
            mode: PlannerMode::Frozen,
            ..PlannerConfig::default()
        });
        let (before, source) = planner.plan(&input());
        assert_eq!(source, PlanSource::Static);
        for _ in 0..50 {
            planner.observe(before.chosen, 10.0, 10_000.0);
        }
        let (after, source) = planner.plan(&input());
        assert_eq!(source, PlanSource::Static);
        assert_eq!(after, before, "frozen plans are bit-stable");
    }

    #[test]
    fn observe_clamps_garbage() {
        let planner = Planner::new(PlannerConfig::default());
        planner.observe(CsjMethod::ExMinMax, 0.0, 100.0); // ignored
        planner.observe(CsjMethod::ExMinMax, f64::NAN, 100.0); // ignored
        planner.observe(CsjMethod::Auto, 10.0, 100.0); // ignored
        let (plan, source) = planner.plan(&input());
        assert_eq!(source, PlanSource::Static);
        assert_eq!(plan, CostTable::seeded().plan(&input()));
    }

    #[test]
    fn ladder_uses_corrections() {
        let planner = Planner::new(PlannerConfig::default());
        let cold = planner.ladder(CsjMethod::ExMinMax, &input());
        assert_eq!(
            *cold.last().unwrap(),
            CsjMethod::ApMinMax,
            "counterpart rung is always last"
        );
        // Make the current first rung look pathologically slow; the
        // ladder must promote a different exact sibling.
        let first = cold[0];
        for _ in 0..50 {
            let est = planner.base_estimate(first, &input());
            planner.observe(first, est, est * 100.0);
        }
        let warmed = planner.ladder(CsjMethod::ExMinMax, &input());
        assert_ne!(warmed[0], first);
        assert_eq!(*warmed.last().unwrap(), CsjMethod::ApMinMax);
    }
}
