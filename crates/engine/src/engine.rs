//! The engine proper: registry, cache, screening pipeline, queries.

use std::collections::HashMap;
use std::sync::Arc;

use csj_core::prepared::{ap_minmax_between, ex_minmax_between, PreparedCommunity};
use csj_core::{run, Community, CsjMethod, CsjOptions, Similarity, UserId};

use crate::error::EngineError;

/// Stable handle to a registered community.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommunityHandle(pub u32);

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The CSJ options every join runs with (eps, matcher, encoding...).
    pub options: CsjOptions,
    /// Method used for the fast screening phase (Section 3 prescribes an
    /// approximate method here).
    pub screen_method: CsjMethod,
    /// Method used for precise refinement (an exact method).
    pub refine_method: CsjMethod,
    /// Pairs whose *screened* similarity falls below this ratio are not
    /// refined (the paper's "similar-enough group" cut).
    pub screen_threshold: f64,
    /// Worker threads for multi-pair queries (screening fans out across
    /// pairs; each join stays single-threaded).
    pub threads: usize,
}

impl EngineConfig {
    /// Paper-flavoured defaults: screen with Ap-MinMax, refine with
    /// Ex-MinMax, 15% screening threshold (the paper's lower similarity
    /// band), eps from the caller.
    pub fn new(eps: u32) -> Self {
        Self {
            options: CsjOptions::new(eps),
            screen_method: CsjMethod::ApMinMax,
            refine_method: CsjMethod::ExMinMax,
            screen_threshold: 0.15,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
        }
    }
}

/// A scored community pair returned by queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScore {
    /// The queried community.
    pub x: CommunityHandle,
    /// The other community.
    pub y: CommunityHandle,
    /// The (refined, exact) similarity.
    pub similarity: Similarity,
}

/// The outcome of a screening pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenOutcome {
    /// Pairs that cleared the threshold, with their *approximate* score.
    pub shortlisted: Vec<(CommunityHandle, Similarity)>,
    /// Pairs that were screened out.
    pub rejected: Vec<(CommunityHandle, Similarity)>,
    /// Pairs skipped because the size constraint makes the comparison
    /// meaningless (paper: `|B| < ceil(|A|/2)`).
    pub inadmissible: Vec<CommunityHandle>,
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Registered communities.
    pub communities: usize,
    /// Exact similarities currently cached.
    pub cached_pairs: usize,
    /// Joins executed since creation (screen + refine).
    pub joins_executed: u64,
    /// Cache hits served.
    pub cache_hits: u64,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    similarity: Similarity,
    version_x: u64,
    version_y: u64,
}

/// One registered community plus its (lazily rebuilt) prepared encoding.
#[derive(Debug)]
struct Registered {
    community: Community,
    version: u64,
    /// Prepared MinMax encodings for the engine's (eps, parts); rebuilt
    /// lazily after mutations. `Arc` so parallel screening workers can
    /// share it without cloning the buffers.
    prepared: Option<Arc<PreparedCommunity>>,
}

/// The multi-community CSJ engine. Not `Sync`-shared; wrap in a lock for
/// concurrent callers (queries fan out internally already).
///
/// ```
/// use csj_core::Community;
/// use csj_engine::{CsjEngine, EngineConfig};
///
/// let mut engine = CsjEngine::new(2, EngineConfig::new(1));
/// let x = engine.register(Community::from_rows("X", 2,
///     vec![(1u64, vec![3u32, 3]), (2, vec![9, 9])]).unwrap()).unwrap();
/// let y = engine.register(Community::from_rows("Y", 2,
///     vec![(7u64, vec![3u32, 4]), (8, vec![50, 50])]).unwrap()).unwrap();
/// let sim = engine.similarity(x, y).unwrap();
/// assert_eq!(sim.percent(), 50.0); // one of X's two users has a partner
/// ```
#[derive(Debug)]
pub struct CsjEngine {
    config: EngineConfig,
    d: usize,
    entries: Vec<Registered>,
    names: HashMap<String, u32>,
    /// Exact-similarity cache keyed by (smaller handle, larger handle).
    cache: HashMap<(u32, u32), CacheEntry>,
    joins_executed: std::sync::atomic::AtomicU64,
    cache_hits: u64,
}

impl CsjEngine {
    /// Create an engine for `d`-dimensional communities.
    pub fn new(d: usize, config: EngineConfig) -> Self {
        assert!(d > 0, "dimensionality must be positive");
        Self {
            config,
            d,
            entries: Vec::new(),
            names: HashMap::new(),
            cache: HashMap::new(),
            joins_executed: std::sync::atomic::AtomicU64::new(0),
            cache_hits: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Register a community; names must be unique.
    pub fn register(&mut self, community: Community) -> Result<CommunityHandle, EngineError> {
        if community.d() != self.d {
            return Err(EngineError::DimensionMismatch {
                engine_d: self.d,
                got: community.d(),
            });
        }
        if self.names.contains_key(community.name()) {
            return Err(EngineError::DuplicateName(community.name().to_string()));
        }
        let handle = self.entries.len() as u32;
        self.names.insert(community.name().to_string(), handle);
        self.entries.push(Registered {
            community,
            version: 0,
            prepared: None,
        });
        Ok(CommunityHandle(handle))
    }

    /// Look up a community by name.
    pub fn find(&self, name: &str) -> Option<CommunityHandle> {
        self.names.get(name).map(|&h| CommunityHandle(h))
    }

    /// Borrow a registered community.
    pub fn community(&self, handle: CommunityHandle) -> Result<&Community, EngineError> {
        self.entries
            .get(handle.0 as usize)
            .map(|e| &e.community)
            .ok_or(EngineError::UnknownCommunity(handle.0))
    }

    /// All registered handles.
    pub fn handles(&self) -> impl Iterator<Item = CommunityHandle> + '_ {
        (0..self.entries.len() as u32).map(CommunityHandle)
    }

    /// Get (building if stale) the prepared MinMax encoding of a
    /// community. Encodings are shared (`Arc`) with in-flight queries.
    fn prepared(&mut self, handle: u32) -> Arc<PreparedCommunity> {
        let entry = &mut self.entries[handle as usize];
        if entry.prepared.is_none() {
            entry.prepared = Some(Arc::new(PreparedCommunity::new(
                entry.community.clone(),
                &self.config.options,
            )));
        }
        entry.prepared.clone().expect("just built")
    }

    /// Join an oriented prepared pair with `method`, using the prepared
    /// fast paths for the MinMax methods.
    fn join_prepared(
        &self,
        method: CsjMethod,
        b: &PreparedCommunity,
        a: &PreparedCommunity,
    ) -> Result<Similarity, EngineError> {
        csj_core::validate_sizes(b.len(), a.len()).map_err(EngineError::Csj)?;
        self.joins_executed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let matched = match method {
            CsjMethod::ApMinMax => ap_minmax_between(b, a, &self.config.options).pairs.len(),
            CsjMethod::ExMinMax => ex_minmax_between(b, a, &self.config.options).pairs.len(),
            other => {
                let outcome = run(other, b.community(), a.community(), &self.config.options)?;
                outcome.similarity.matched
            }
        };
        Ok(Similarity::new(matched, b.len()))
    }

    /// Overwrite (or insert) a user's profile; invalidates cached
    /// similarities involving the community. In a live system this is
    /// the "counters increased by one" path of the paper's Section 1.1.
    pub fn upsert_user(
        &mut self,
        handle: CommunityHandle,
        user: UserId,
        vector: &[u32],
    ) -> Result<(), EngineError> {
        let idx = handle.0 as usize;
        let entry = self
            .entries
            .get_mut(idx)
            .ok_or(EngineError::UnknownCommunity(handle.0))?;
        match entry.community.find_user(user) {
            Some(i) => entry.community.set_vector(i, vector)?,
            None => entry.community.push(user, vector)?,
        }
        self.bump_version(handle.0);
        Ok(())
    }

    /// Remove a user (unsubscribe); invalidates cached similarities.
    pub fn remove_user(
        &mut self,
        handle: CommunityHandle,
        user: UserId,
    ) -> Result<(), EngineError> {
        let idx = handle.0 as usize;
        let entry = self
            .entries
            .get_mut(idx)
            .ok_or(EngineError::UnknownCommunity(handle.0))?;
        let i = entry
            .community
            .find_user(user)
            .ok_or(EngineError::UnknownUser(user))?;
        entry.community.swap_remove_user(i);
        self.bump_version(handle.0);
        Ok(())
    }

    fn bump_version(&mut self, handle: u32) {
        let entry = &mut self.entries[handle as usize];
        entry.version += 1;
        entry.prepared = None; // encodings are stale now
        self.cache.retain(|&(x, y), _| x != handle && y != handle);
    }

    /// Orient a pair as (smaller B, larger A) with their handles; equal
    /// sizes tie-break on the handle so the cache key is canonical.
    fn oriented(&self, x: CommunityHandle, y: CommunityHandle) -> Result<(u32, u32), EngineError> {
        let cx = self.community(x)?;
        let cy = self.community(y)?;
        Ok(match cx.len().cmp(&cy.len()) {
            std::cmp::Ordering::Less => (x.0, y.0),
            std::cmp::Ordering::Greater => (y.0, x.0),
            std::cmp::Ordering::Equal => (x.0.min(y.0), x.0.max(y.0)),
        })
    }

    /// Exact similarity of a pair, cached. Recomputes only when either
    /// community changed since the cached join.
    pub fn similarity(
        &mut self,
        x: CommunityHandle,
        y: CommunityHandle,
    ) -> Result<Similarity, EngineError> {
        let (b, a) = self.oriented(x, y)?;
        if let Some(entry) = self.cache.get(&(b, a)) {
            if entry.version_x == self.entries[b as usize].version
                && entry.version_y == self.entries[a as usize].version
            {
                self.cache_hits += 1;
                return Ok(entry.similarity);
            }
        }
        let pb = self.prepared(b);
        let pa = self.prepared(a);
        let similarity = self.join_prepared(self.config.refine_method, &pb, &pa)?;
        self.cache.insert(
            (b, a),
            CacheEntry {
                similarity,
                version_x: self.entries[b as usize].version,
                version_y: self.entries[a as usize].version,
            },
        );
        Ok(similarity)
    }

    /// Phase 1 of the paper's pipeline: screen `x` against `candidates`
    /// with the fast approximate method, in parallel, partitioning them
    /// into shortlisted / rejected / inadmissible.
    pub fn screen(
        &mut self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
    ) -> Result<ScreenOutcome, EngineError> {
        self.community(x)?;
        for &c in candidates {
            self.community(c)?;
        }
        // Prepare every participant once (&mut phase), then fan the
        // actual joins out over shared Arcs (&self phase).
        let px = self.prepared(x.0);
        let prepared: Vec<Arc<PreparedCommunity>> =
            candidates.iter().map(|&c| self.prepared(c.0)).collect();

        let inputs: Vec<(CommunityHandle, Arc<PreparedCommunity>)> =
            candidates.iter().copied().zip(prepared).collect();
        let results = self.parallel_map(&inputs, |(cand, py)| {
            let (b, a) = if px.len() <= py.len() {
                (&px, py)
            } else {
                (py, &px)
            };
            match self.join_prepared(self.config.screen_method, b, a) {
                Ok(similarity) => (*cand, Some(similarity)),
                Err(EngineError::Csj(_)) => (*cand, None),
                Err(other) => unreachable!("handles validated above: {other}"),
            }
        });

        let mut out = ScreenOutcome {
            shortlisted: Vec::new(),
            rejected: Vec::new(),
            inadmissible: Vec::new(),
        };
        for (cand, sim) in results {
            match sim {
                None => out.inadmissible.push(cand),
                Some(s) if s.ratio() >= self.config.screen_threshold => {
                    out.shortlisted.push((cand, s))
                }
                Some(s) => out.rejected.push((cand, s)),
            }
        }
        out.shortlisted
            .sort_by(|p, q| q.1.ratio().partial_cmp(&p.1.ratio()).expect("finite"));
        Ok(out)
    }

    /// The full two-phase pipeline of Section 3: screen `candidates`,
    /// then refine the shortlist with the exact method (cached) and
    /// return the refined ranking.
    pub fn screen_and_refine(
        &mut self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
    ) -> Result<Vec<PairScore>, EngineError> {
        let screened = self.screen(x, candidates)?;
        let mut refined = Vec::with_capacity(screened.shortlisted.len());
        for (cand, _) in screened.shortlisted {
            let similarity = self.similarity(x, cand)?;
            refined.push(PairScore {
                x,
                y: cand,
                similarity,
            });
        }
        refined.sort_by(|p, q| {
            q.similarity
                .ratio()
                .partial_cmp(&p.similarity.ratio())
                .expect("finite")
        });
        Ok(refined)
    }

    /// The `k` registered communities most similar to `x` (exact scores,
    /// via screen-and-refine over everything admissible).
    pub fn top_k_similar(
        &mut self,
        x: CommunityHandle,
        k: usize,
    ) -> Result<Vec<PairScore>, EngineError> {
        let candidates: Vec<CommunityHandle> = self.handles().filter(|&h| h != x).collect();
        let mut ranked = self.screen_and_refine(x, &candidates)?;
        ranked.truncate(k);
        Ok(ranked)
    }

    /// Every admissible pair among the registered communities whose
    /// *exact* similarity reaches `threshold` (the broadcast-
    /// recommendation sweep of scenario ii.b).
    ///
    /// Uses the paper's two-phase strategy per pair: the cheap screening
    /// method first, refining only pairs whose screened similarity
    /// clears the threshold. Because approximate CSJ never over-counts,
    /// a pair screened *below* the threshold minus the screening margin
    /// cannot reach it exactly — but since greedy matchings are maximal
    /// (>= half the maximum), the safe skip bound is `threshold / 2`.
    pub fn pairs_above(&mut self, threshold: f64) -> Result<Vec<PairScore>, EngineError> {
        let handles: Vec<CommunityHandle> = self.handles().collect();
        let mut out = Vec::new();
        for (i, &x) in handles.iter().enumerate() {
            for &y in &handles[i + 1..] {
                let (b, a) = self.oriented(x, y)?;
                if csj_core::validate_sizes(
                    self.entries[b as usize].community.len(),
                    self.entries[a as usize].community.len(),
                )
                .is_err()
                {
                    continue;
                }
                // Phase 1: cheap screen (unless already cached exactly).
                let cached = self
                    .cache
                    .get(&(b, a))
                    .map(|e| {
                        e.version_x == self.entries[b as usize].version
                            && e.version_y == self.entries[a as usize].version
                    })
                    .unwrap_or(false);
                if !cached {
                    let pb = self.prepared(b);
                    let pa = self.prepared(a);
                    let screened = self.join_prepared(self.config.screen_method, &pb, &pa)?;
                    // Maximal matchings reach at least half the maximum,
                    // so a screened ratio below threshold/2 proves the
                    // exact ratio is below threshold.
                    if screened.ratio() < threshold / 2.0 {
                        continue;
                    }
                }
                // Phase 2: exact (cached).
                let similarity = self.similarity(x, y)?;
                if similarity.ratio() >= threshold {
                    out.push(PairScore { x, y, similarity });
                }
            }
        }
        out.sort_by(|p, q| {
            q.similarity
                .ratio()
                .partial_cmp(&p.similarity.ratio())
                .expect("finite")
        });
        Ok(out)
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            communities: self.entries.len(),
            cached_pairs: self.cache.len(),
            joins_executed: self
                .joins_executed
                .load(std::sync::atomic::Ordering::Relaxed),
            cache_hits: self.cache_hits,
        }
    }

    /// Order-preserving parallel map over a slice (workers steal by
    /// index; results land in input order).
    fn parallel_map<'s, T: Sync, R: Send>(
        &'s self,
        items: &'s [T],
        f: impl Fn(&T) -> R + Sync + 's,
    ) -> Vec<R> {
        let threads = self.config.threads.max(1).min(items.len().max(1));
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
        results.resize_with(items.len(), || None);
        let results_cell = std::sync::Mutex::new(&mut results);
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    results_cell.lock().expect("no poisoned workers")[i] = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker filled slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn community(name: &str, rows: &[[u32; 2]]) -> Community {
        Community::from_rows(
            name,
            2,
            rows.iter().enumerate().map(|(i, v)| (i as u64, v.to_vec())),
        )
        .expect("well-formed")
    }

    fn engine_with_three() -> (CsjEngine, CommunityHandle, CommunityHandle, CommunityHandle) {
        let mut engine = CsjEngine::new(2, EngineConfig::new(1));
        // anchor: 4 users; near: 3 of 4 match; far: none match.
        let anchor = community("anchor", &[[1, 1], [5, 5], [9, 9], [13, 13]]);
        let near = community("near", &[[1, 2], [5, 5], [9, 8], [100, 100]]);
        let far = community("far", &[[50, 0], [60, 0], [70, 0], [80, 0]]);
        let a = engine.register(anchor).unwrap();
        let n = engine.register(near).unwrap();
        let f = engine.register(far).unwrap();
        (engine, a, n, f)
    }

    #[test]
    fn register_and_lookup() {
        let (engine, a, _, _) = engine_with_three();
        assert_eq!(engine.find("anchor"), Some(a));
        assert_eq!(engine.find("nope"), None);
        assert_eq!(engine.community(a).unwrap().len(), 4);
        assert_eq!(engine.stats().communities, 3);
    }

    #[test]
    fn register_rejects_bad_input() {
        let mut engine = CsjEngine::new(2, EngineConfig::new(1));
        engine.register(community("x", &[[1, 1]])).unwrap();
        assert_eq!(
            engine.register(community("x", &[[2, 2]])),
            Err(EngineError::DuplicateName("x".into()))
        );
        let wrong_d = Community::new("y", 3);
        assert!(matches!(
            engine.register(wrong_d),
            Err(EngineError::DimensionMismatch {
                engine_d: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn similarity_is_cached_and_symmetric() {
        let (mut engine, a, n, _) = engine_with_three();
        let s1 = engine.similarity(a, n).unwrap();
        assert_eq!(s1.matched, 3);
        let before = engine.stats().joins_executed;
        let s2 = engine.similarity(n, a).unwrap(); // symmetric: same cache slot
        assert_eq!(s1, s2);
        assert_eq!(engine.stats().joins_executed, before, "must be a cache hit");
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn updates_invalidate_cache() {
        let (mut engine, a, n, _) = engine_with_three();
        let s1 = engine.similarity(a, n).unwrap();
        assert_eq!(s1.matched, 3);
        // Move the non-matching 'near' user onto a matching profile.
        engine.upsert_user(n, 3, &[13, 13]).unwrap();
        let s2 = engine.similarity(a, n).unwrap();
        assert_eq!(s2.matched, 4, "update must be reflected");
        // Removing a matching user drops it again.
        engine.remove_user(n, 3).unwrap();
        let s3 = engine.similarity(a, n).unwrap();
        assert_eq!(s3.matched, 3);
        assert_eq!(
            engine.remove_user(n, 77).unwrap_err(),
            EngineError::UnknownUser(77)
        );
    }

    #[test]
    fn upsert_can_insert_new_users() {
        let (mut engine, a, _, _) = engine_with_three();
        engine.upsert_user(a, 999, &[2, 2]).unwrap();
        assert_eq!(engine.community(a).unwrap().len(), 5);
    }

    #[test]
    fn screening_partitions_candidates() {
        let (mut engine, a, n, f) = engine_with_three();
        let outcome = engine.screen(a, &[n, f]).unwrap();
        assert_eq!(outcome.shortlisted.len(), 1);
        assert_eq!(outcome.shortlisted[0].0, n);
        assert_eq!(outcome.rejected, vec![(f, Similarity::new(0, 4))]);
        assert!(outcome.inadmissible.is_empty());
    }

    #[test]
    fn screening_flags_inadmissible_sizes() {
        let mut engine = CsjEngine::new(2, EngineConfig::new(1));
        let big = community("big", &[[1, 1], [2, 2], [3, 3], [4, 4], [5, 5]]);
        let tiny = community("tiny", &[[1, 1]]);
        let b = engine.register(big).unwrap();
        let t = engine.register(tiny).unwrap();
        let outcome = engine.screen(b, &[t]).unwrap();
        assert_eq!(outcome.inadmissible, vec![t]);
    }

    #[test]
    fn top_k_ranks_by_exact_similarity() {
        let (mut engine, a, n, _) = engine_with_three();
        let top = engine.top_k_similar(a, 5).unwrap();
        assert_eq!(top.len(), 1, "only 'near' clears the screen threshold");
        assert_eq!(top[0].y, n);
        assert_eq!(top[0].similarity.matched, 3);
    }

    #[test]
    fn pairs_above_sweeps_all_admissible_pairs() {
        let (mut engine, a, n, f) = engine_with_three();
        let pairs = engine.pairs_above(0.5).unwrap();
        assert_eq!(pairs.len(), 1);
        let p = pairs[0];
        assert!((p.x == a && p.y == n) || (p.x == n && p.y == a));
        let _ = f;
    }

    #[test]
    fn unknown_handle_errors() {
        let (mut engine, a, _, _) = engine_with_three();
        let ghost = CommunityHandle(99);
        assert!(matches!(
            engine.similarity(a, ghost),
            Err(EngineError::UnknownCommunity(99))
        ));
        assert!(engine.screen(ghost, &[a]).is_err());
        assert!(engine.upsert_user(ghost, 1, &[1, 1]).is_err());
    }
}
