//! The engine proper: registry, cache, screening pipeline, queries.
//!
//! Every multi-pair query comes in two flavours: the plain entry point
//! (`screen`, `screen_and_refine`, `top_k_similar`, `pairs_above`) runs
//! to completion, and a `*_with_budget` twin that bounds the work with a
//! [`Budget`] and *degrades gracefully* — returning a [`Partial`] with
//! everything scored before the budget ran out instead of an error.
//! Joins are panic-isolated per candidate: one poisoned community shows
//! up as an [`EngineError::JoinPanicked`] entry in the outcome while the
//! rest of the query completes normally.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use csj_core::plan::{Exactness, PlanInput, QueryPlan};
use csj_core::prepared::{ap_minmax_between, ex_minmax_between, PreparedCommunity};
use csj_core::{
    community_mass, plan_shards, run, Community, Coverage, CsjError, CsjMethod, CsjOptions,
    JoinTelemetry, ShardLayout, Similarity, UserId,
};
use csj_obs::{ForensicRecord, MetricsSnapshot, QueryTrace};
use csj_shard::{ShardConfig, ShardCtx, ShardExecutor, ShardOutcome};

use crate::budget::{exhausted_marker, Budget, BudgetExhausted, Partial};
use crate::error::EngineError;
#[cfg(feature = "fault-injection")]
use crate::fault::FaultPlan;
use crate::obs::{outcome_label, EngineObs, ObsConfig, QueryRecorder};
use crate::plan::{PlanSource, Planner, PlannerConfig};

/// Stable handle to a registered community.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommunityHandle(pub u32);

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The CSJ options every join runs with (eps, matcher, encoding...).
    pub options: CsjOptions,
    /// Method used for the fast screening phase (Section 3 prescribes an
    /// approximate method here).
    pub screen_method: CsjMethod,
    /// Method used for precise refinement (an exact method).
    pub refine_method: CsjMethod,
    /// Pairs whose *screened* similarity falls below this ratio are not
    /// refined (the paper's "similar-enough group" cut).
    pub screen_threshold: f64,
    /// Worker threads for multi-pair queries (screening fans out across
    /// pairs; each join stays single-threaded). The shard executor
    /// shares this same knob — sharded and flat queries draw from one
    /// parallelism budget, so enabling sharding never oversubscribes
    /// the host. The default is the machine's full
    /// `available_parallelism`: each worker is compute-bound with no
    /// blocking I/O, so there is nothing to win from running more
    /// threads than cores (they would only steal each other's cache)
    /// and nothing to win from running fewer.
    pub threads: usize,
    /// Observability: span recording, metrics, flight-recorder depth.
    pub obs: ObsConfig,
    /// Cost-based planner: resolves [`CsjMethod::Auto`], ranks the
    /// degradation ladder, refines estimates from measured latencies.
    pub planner: PlannerConfig,
    /// Sharded execution of multi-pair queries: skew-aware layout,
    /// per-shard deadline slices, straggler hedging, typed coverage.
    /// Disabled by default (the `*_sharded_*` entry points still work;
    /// this knob routes the service's queries through them).
    pub shard: ShardConfig,
}

impl EngineConfig {
    /// Paper-flavoured defaults: screen with Ap-MinMax, refine with
    /// Ex-MinMax, 15% screening threshold (the paper's lower similarity
    /// band), eps from the caller.
    pub fn new(eps: u32) -> Self {
        Self {
            options: CsjOptions::new(eps),
            screen_method: CsjMethod::ApMinMax,
            refine_method: CsjMethod::ExMinMax,
            screen_threshold: 0.15,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            obs: ObsConfig::default(),
            planner: PlannerConfig::default(),
            shard: ShardConfig::default(),
        }
    }
}

/// A scored community pair returned by queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScore {
    /// The queried community.
    pub x: CommunityHandle,
    /// The other community.
    pub y: CommunityHandle,
    /// The (refined, exact) similarity.
    pub similarity: Similarity,
}

/// The outcome of a screening pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScreenOutcome {
    /// Pairs that cleared the threshold, with their *approximate* score.
    pub shortlisted: Vec<(CommunityHandle, Similarity)>,
    /// Pairs that were screened out.
    pub rejected: Vec<(CommunityHandle, Similarity)>,
    /// Pairs skipped because the size constraint makes the comparison
    /// meaningless (paper: `|B| < ceil(|A|/2)`).
    pub inadmissible: Vec<CommunityHandle>,
    /// Candidates whose join panicked or hit an injected fault; the
    /// panic was contained at the per-candidate boundary and the rest of
    /// the screen completed.
    pub failed: Vec<(CommunityHandle, EngineError)>,
    /// Candidates never screened because the query's [`Budget`] ran out.
    /// Always empty for unbudgeted queries.
    pub skipped: Vec<CommunityHandle>,
}

/// Resume point of a truncated [`CsjEngine::pairs_above_with_budget`]
/// sweep: the first pair the sweep did *not* process. Feed it back to
/// continue exactly where the budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairsCursor {
    i: u32,
    j: u32,
}

/// Result of a (possibly budgeted) broadcast sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PairsSweep {
    /// Pairs whose exact similarity reached the threshold, best first.
    pub pairs: Vec<PairScore>,
    /// Where to resume when the budget ran out; `None` means the sweep
    /// covered every pair.
    pub cursor: Option<PairsCursor>,
    /// Pairs whose join panicked or hit an injected fault; the sweep
    /// carried on past them.
    pub failed: Vec<(CommunityHandle, CommunityHandle, EngineError)>,
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Registered communities.
    pub communities: usize,
    /// Exact similarities currently cached.
    pub cached_pairs: usize,
    /// Joins executed since creation (screen + refine).
    pub joins_executed: u64,
    /// Cache hits served.
    pub cache_hits: u64,
    /// Kernel telemetry aggregated across every join the engine ran
    /// (cache hits contribute nothing — no kernel work happened).
    pub telemetry: JoinTelemetry,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "communities:     {}", self.communities)?;
        writeln!(f, "cached pairs:    {}", self.cached_pairs)?;
        writeln!(f, "joins executed:  {}", self.joins_executed)?;
        writeln!(f, "cache hits:      {}", self.cache_hits)?;
        write!(f, "{}", self.telemetry)
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    similarity: Similarity,
    version_x: u64,
    version_y: u64,
}

/// One registered community plus its (lazily rebuilt) prepared encoding.
#[derive(Debug)]
struct Registered {
    /// `Arc` so prepared encodings and in-flight queries share the rows
    /// instead of cloning them; mutations go through [`Arc::make_mut`].
    community: Arc<Community>,
    version: u64,
    /// Prepared MinMax encodings for the engine's (eps, parts); rebuilt
    /// lazily after mutations. `Arc` so parallel screening workers can
    /// share it without cloning the buffers, `Mutex` so concurrent
    /// `&self` queries can build it lazily.
    prepared: Mutex<Option<Arc<PreparedCommunity>>>,
}

/// Per-candidate result of a screening worker.
enum Screened {
    Scored(Similarity),
    Inadmissible,
    Skipped,
    Failed(EngineError),
}

/// The multi-community CSJ engine. Queries take `&self`, so an
/// `Arc<CsjEngine>` can serve concurrent callers directly (this is what
/// `csj-service` does); registry *mutations* (`register`, `upsert_user`,
/// `remove_user`) still take `&mut self` and therefore require exclusive
/// access.
///
/// ```
/// use csj_core::Community;
/// use csj_engine::{CsjEngine, EngineConfig};
///
/// let mut engine = CsjEngine::new(2, EngineConfig::new(1));
/// let x = engine.register(Community::from_rows("X", 2,
///     vec![(1u64, vec![3u32, 3]), (2, vec![9, 9])]).unwrap()).unwrap();
/// let y = engine.register(Community::from_rows("Y", 2,
///     vec![(7u64, vec![3u32, 4]), (8, vec![50, 50])]).unwrap()).unwrap();
/// let sim = engine.similarity(x, y).unwrap();
/// assert_eq!(sim.percent(), 50.0); // one of X's two users has a partner
/// ```
#[derive(Debug)]
pub struct CsjEngine {
    config: EngineConfig,
    d: usize,
    entries: Vec<Registered>,
    names: HashMap<String, u32>,
    /// Exact-similarity cache keyed by (smaller handle, larger handle);
    /// `Mutex` so concurrent `&self` queries share it.
    cache: Mutex<HashMap<(u32, u32), CacheEntry>>,
    joins_executed: AtomicU64,
    cache_hits: AtomicU64,
    /// Aggregated kernel telemetry; a `Mutex` (not per-field atomics) so
    /// parallel screening workers merge whole [`JoinTelemetry`] blocks
    /// consistently — histograms and maxima don't decompose into
    /// independent atomic adds.
    telemetry: Mutex<JoinTelemetry>,
    /// Metrics registry + flight recorder (see [`ObsConfig`]).
    obs: EngineObs,
    /// Cost-based planner (Auto resolution, degradation ladders,
    /// online latency feedback). See [`PlannerConfig`].
    planner: Planner,
    #[cfg(feature = "fault-injection")]
    faults: Option<FaultPlan>,
    #[cfg(feature = "fault-injection")]
    shard_faults: Option<Arc<csj_shard::ShardFaultPlan>>,
}

impl CsjEngine {
    /// Create an engine for `d`-dimensional communities.
    pub fn new(d: usize, config: EngineConfig) -> Self {
        assert!(d > 0, "dimensionality must be positive");
        let obs = EngineObs::new(&config.obs);
        let planner = Planner::new(config.planner.clone());
        Self {
            config,
            d,
            obs,
            planner,
            entries: Vec::new(),
            names: HashMap::new(),
            cache: Mutex::new(HashMap::new()),
            joins_executed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            telemetry: Mutex::new(JoinTelemetry::default()),
            #[cfg(feature = "fault-injection")]
            faults: None,
            #[cfg(feature = "fault-injection")]
            shard_faults: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Register a community; names must be unique.
    pub fn register(&mut self, community: Community) -> Result<CommunityHandle, EngineError> {
        if community.d() != self.d {
            return Err(EngineError::DimensionMismatch {
                engine_d: self.d,
                got: community.d(),
            });
        }
        if self.names.contains_key(community.name()) {
            return Err(EngineError::DuplicateName(community.name().to_string()));
        }
        let handle = self.entries.len() as u32;
        self.names.insert(community.name().to_string(), handle);
        self.entries.push(Registered {
            community: Arc::new(community),
            version: 0,
            prepared: Mutex::new(None),
        });
        Ok(CommunityHandle(handle))
    }

    /// Register a community with an explicit entry version — the
    /// durability layer's recovery hook. Restoring a snapshot must
    /// reproduce the registry *bit-identically*, including the per-entry
    /// versions that key cache freshness, so replaying the WAL tail on
    /// top of the restored image continues the exact version sequence
    /// the live engine had. Identical validation to [`Self::register`];
    /// handles are assigned in call order, so restoring entries in
    /// snapshot order reproduces the original handles too.
    pub fn restore(
        &mut self,
        community: Community,
        version: u64,
    ) -> Result<CommunityHandle, EngineError> {
        let handle = self.register(community)?;
        self.entries[handle.0 as usize].version = version;
        Ok(handle)
    }

    /// The mutation version of a registered community: 0 at
    /// registration, bumped once per applied mutation. Exposed so the
    /// durability layer can fingerprint and snapshot the registry
    /// (cache entries are keyed by these versions).
    pub fn community_version(&self, handle: CommunityHandle) -> Result<u64, EngineError> {
        self.entries
            .get(handle.0 as usize)
            .map(|e| e.version)
            .ok_or(EngineError::UnknownCommunity(handle.0))
    }

    /// Whether a fresh prepared encoding is currently cached for
    /// `handle`. Observability for tests and the durability layer: a
    /// *failed* mutation must not evict a still-valid encoding.
    pub fn has_prepared(&self, handle: CommunityHandle) -> bool {
        self.entries
            .get(handle.0 as usize)
            .map(|e| {
                e.prepared
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .is_some()
            })
            .unwrap_or(false)
    }

    /// The engine's dimensionality — every registered community shares
    /// it.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Look up a community by name.
    pub fn find(&self, name: &str) -> Option<CommunityHandle> {
        self.names.get(name).map(|&h| CommunityHandle(h))
    }

    /// Borrow a registered community.
    pub fn community(&self, handle: CommunityHandle) -> Result<&Community, EngineError> {
        self.entries
            .get(handle.0 as usize)
            .map(|e| e.community.as_ref())
            .ok_or(EngineError::UnknownCommunity(handle.0))
    }

    /// All registered handles.
    pub fn handles(&self) -> impl Iterator<Item = CommunityHandle> + '_ {
        (0..self.entries.len() as u32).map(CommunityHandle)
    }

    /// Get (building if stale) the prepared MinMax encoding of a
    /// community. Encodings are shared (`Arc`) with in-flight queries,
    /// and share the community rows with the registry rather than
    /// cloning them. Building happens under the slot's lock, so
    /// concurrent queries racing on a cold slot prepare it exactly once.
    fn prepared(&self, handle: u32) -> Arc<PreparedCommunity> {
        let entry = &self.entries[handle as usize];
        let mut slot = entry.prepared.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(prepared) = slot.as_ref() {
            return Arc::clone(prepared);
        }
        let built = Arc::new(PreparedCommunity::from_shared(
            Arc::clone(&entry.community),
            &self.config.options,
        ));
        *slot = Some(Arc::clone(&built));
        built
    }

    /// Join an oriented prepared pair with `method`, using the prepared
    /// fast paths for the MinMax methods. Runs under `opts` (which may
    /// carry a query budget's cancellation token); a join truncated by
    /// cancellation reports [`EngineError::Cancelled`] rather than an
    /// under-counted similarity.
    ///
    /// This is the planner stage: [`CsjMethod::Auto`] is resolved to a
    /// concrete method *here*, before kernel dispatch, under the
    /// caller's `exactness` requirement (refinement demands an exact
    /// method even when the configured refine method is `Auto`, so the
    /// exact-similarity cache stays exact). Every join — planned or
    /// pinned — feeds its measured latency back to the planner.
    fn join_prepared(
        &self,
        method: CsjMethod,
        exactness: Exactness,
        b: &PreparedCommunity,
        a: &PreparedCommunity,
        opts: &CsjOptions,
        rec: Option<&QueryRecorder>,
    ) -> Result<Similarity, EngineError> {
        csj_core::validate_sizes(b.len(), a.len()).map_err(EngineError::Csj)?;
        let input = PlanInput::from_prepared(b, a, exactness);
        let planned: Option<(QueryPlan, PlanSource)> =
            (method == CsjMethod::Auto).then(|| self.planner.plan(&input));
        let method = planned.as_ref().map_or(method, |(p, _)| p.chosen);
        self.joins_executed.fetch_add(1, Ordering::Relaxed);
        let start_us = rec.map_or(0, QueryRecorder::now_us);
        let (matched, cancelled, telemetry, timings) = match method {
            CsjMethod::ApMinMax => {
                let raw = ap_minmax_between(b, a, opts);
                (raw.pairs.len(), raw.cancelled, raw.telemetry, raw.timings)
            }
            CsjMethod::ExMinMax => {
                let raw = ex_minmax_between(b, a, opts);
                (raw.pairs.len(), raw.cancelled, raw.telemetry, raw.timings)
            }
            other => {
                let outcome = run(other, b.community(), a.community(), opts)?;
                (
                    outcome.similarity.matched,
                    outcome.cancelled,
                    outcome.telemetry,
                    outcome.timings,
                )
            }
        };
        let actual_us = timings.total().as_micros().min(u128::from(u64::MAX)) as u64;
        // Close the feedback loop (a cancelled join under-reports its
        // true cost, so it must not drag the model down).
        if !cancelled {
            self.planner.observe(
                method,
                self.planner.base_estimate(method, &input),
                actual_us as f64,
            );
        }
        self.telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&telemetry);
        self.obs.on_join(
            method,
            &telemetry,
            &timings,
            cancelled,
            rec.map_or(0, |r| r.trace_id()),
        );
        if let Some((plan, source)) = &planned {
            self.obs.on_plan(plan, *source, actual_us);
        }
        if let Some(rec) = rec {
            if let Some((plan, source)) = &planned {
                rec.record_plan(plan, *source, actual_us, start_us);
            }
            let outcome = if cancelled { "cancelled" } else { "ok" };
            rec.record_join(
                method,
                b.len(),
                a.len(),
                &telemetry,
                &timings,
                outcome,
                start_us,
            );
        }
        if cancelled {
            return Err(EngineError::Cancelled);
        }
        Ok(Similarity::new(matched, b.len()))
    }

    /// Fire any injected faults registered for `handle`. Called just
    /// before each join, inside the per-candidate isolation boundary.
    #[cfg(feature = "fault-injection")]
    fn fault_hook(&self, handle: u32) -> Result<(), EngineError> {
        match &self.faults {
            Some(plan) => {
                let fired = plan.apply(handle);
                if fired.is_err() {
                    self.obs.on_fault();
                }
                fired
            }
            None => Ok(()),
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    fn fault_hook(&self, _handle: u32) -> Result<(), EngineError> {
        Ok(())
    }

    /// Overwrite (or insert) a user's profile; invalidates cached
    /// similarities involving the community. In a live system this is
    /// the "counters increased by one" path of the paper's Section 1.1.
    pub fn upsert_user(
        &mut self,
        handle: CommunityHandle,
        user: UserId,
        vector: &[u32],
    ) -> Result<(), EngineError> {
        let idx = handle.0 as usize;
        let entry = self
            .entries
            .get_mut(idx)
            .ok_or(EngineError::UnknownCommunity(handle.0))?;
        // Validate before touching any state: a rejected vector must
        // leave the still-valid prepared encoding (and the version, and
        // therefore every cache entry) untouched.
        if vector.len() != entry.community.d() {
            return Err(EngineError::Csj(CsjError::VectorLength {
                expected: entry.community.d(),
                got: vector.len(),
            }));
        }
        // Drop the prepared encoding only once the mutation is certain:
        // it shares the community Arc, and releasing it lets make_mut
        // edit in place (refcount 1) instead of deep-copying the rows.
        *entry.prepared.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        let community = Arc::make_mut(&mut entry.community);
        match community.find_user(user) {
            Some(i) => community.set_vector(i, vector)?,
            None => community.push(user, vector)?,
        }
        self.bump_version(handle.0);
        Ok(())
    }

    /// Remove a user (unsubscribe); invalidates cached similarities.
    pub fn remove_user(
        &mut self,
        handle: CommunityHandle,
        user: UserId,
    ) -> Result<(), EngineError> {
        let idx = handle.0 as usize;
        let entry = self
            .entries
            .get_mut(idx)
            .ok_or(EngineError::UnknownCommunity(handle.0))?;
        // Resolve the user before invalidating anything: an unknown user
        // must not cost the community its prepared encoding.
        let i = entry
            .community
            .find_user(user)
            .ok_or(EngineError::UnknownUser(user))?;
        // Release the shared Arc before make_mut.
        *entry.prepared.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        Arc::make_mut(&mut entry.community).swap_remove_user(i);
        self.bump_version(handle.0);
        Ok(())
    }

    fn bump_version(&mut self, handle: u32) {
        let entry = &mut self.entries[handle as usize];
        entry.version += 1;
        // Encodings are stale now.
        *entry.prepared.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        self.cache
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|&(x, y), _| x != handle && y != handle);
    }

    /// Orient a pair as (smaller B, larger A) with their handles; equal
    /// sizes tie-break on the handle so the cache key is canonical.
    fn oriented(&self, x: CommunityHandle, y: CommunityHandle) -> Result<(u32, u32), EngineError> {
        let cx = self.community(x)?;
        let cy = self.community(y)?;
        Ok(match cx.len().cmp(&cy.len()) {
            std::cmp::Ordering::Less => (x.0, y.0),
            std::cmp::Ordering::Greater => (y.0, x.0),
            std::cmp::Ordering::Equal => (x.0.min(y.0), x.0.max(y.0)),
        })
    }

    /// The cached exact similarity of the oriented pair `(b, a)`, if the
    /// cache holds one that is still fresh (neither community changed
    /// since the cached join).
    fn cached_similarity(&self, b: u32, a: u32) -> Option<Similarity> {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(b, a))
            .filter(|e| {
                e.version_x == self.entries[b as usize].version
                    && e.version_y == self.entries[a as usize].version
            })
            .map(|e| e.similarity)
    }

    /// Exact similarity of a pair, cached. Recomputes only when either
    /// community changed since the cached join.
    pub fn similarity(
        &self,
        x: CommunityHandle,
        y: CommunityHandle,
    ) -> Result<Similarity, EngineError> {
        let qopts = self.config.options.clone();
        let joins = AtomicU64::new(0);
        let rec = self.obs.start_recorder("similarity");
        self.obs.on_query("similarity");
        let result = self.refine_pair(x, y, &qopts, &joins, Some(&rec));
        let outcome = match &result {
            Ok(_) => "completed".to_string(),
            Err(e) => format!("failed:{e}"),
        };
        if let Some(trace) = rec.finish(outcome) {
            self.obs.record_trace(trace);
        }
        result
    }

    /// Similarity of a pair computed with an explicit `method` instead
    /// of the configured refine method. The engine's configured refine
    /// method delegates to [`similarity`](CsjEngine::similarity) and
    /// uses the cache; any other method runs one uncached join, so a
    /// degraded (Ap-*) answer never pollutes the exact-similarity
    /// cache. This is the `similarity` rung of the service's
    /// exact→approximate degradation ladder: per
    /// [`CsjMethod::approximate_counterpart`], an Ap-* score is a lower
    /// bound within a factor of two of its Ex-* counterpart.
    pub fn similarity_with(
        &self,
        x: CommunityHandle,
        y: CommunityHandle,
        method: CsjMethod,
    ) -> Result<Similarity, EngineError> {
        if method == self.config.refine_method {
            return self.similarity(x, y);
        }
        let qopts = self.config.options.clone();
        let rec = self.obs.start_recorder("similarity");
        self.obs.on_query("similarity");
        let result = (|| {
            let (b, a) = self.oriented(x, y)?;
            let pb = self.prepared(b);
            let pa = self.prepared(a);
            match catch_unwind(AssertUnwindSafe(|| {
                self.fault_hook(b)?;
                self.fault_hook(a)?;
                self.join_prepared(method, Exactness::Any, &pb, &pa, &qopts, Some(&rec))
            })) {
                Ok(joined) => joined,
                Err(payload) => {
                    self.obs.on_join_panicked();
                    Err(EngineError::JoinPanicked {
                        handle: y.0,
                        message: panic_message(payload),
                    })
                }
            }
        })();
        let outcome = match &result {
            Ok(_) => "completed".to_string(),
            Err(e) => format!("failed:{e}"),
        };
        if let Some(trace) = rec.finish(outcome) {
            self.obs.record_trace(trace);
        }
        result
    }

    /// Exact (refined) similarity of one pair under `qopts`, cached.
    /// The refine join runs inside a panic-isolation boundary: a panic
    /// surfaces as [`EngineError::JoinPanicked`] naming `y`, never an
    /// abort. Increments `joins` when a join actually runs.
    fn refine_pair(
        &self,
        x: CommunityHandle,
        y: CommunityHandle,
        qopts: &CsjOptions,
        joins: &AtomicU64,
        rec: Option<&QueryRecorder>,
    ) -> Result<Similarity, EngineError> {
        let (b, a) = self.oriented(x, y)?;
        if let Some(similarity) = self.cached_similarity(b, a) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.obs.on_cache_hit();
            return Ok(similarity);
        }
        let pb = self.prepared(b);
        let pa = self.prepared(a);
        let method = self.config.refine_method;
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.fault_hook(b)?;
            self.fault_hook(a)?;
            // The result lands in the exact-similarity cache, so an
            // `Auto` refine method must resolve among exact methods.
            self.join_prepared(method, Exactness::Exact, &pb, &pa, qopts, rec)
        }));
        let similarity = match result {
            Ok(joined) => joined?,
            Err(payload) => {
                self.obs.on_join_panicked();
                return Err(EngineError::JoinPanicked {
                    handle: y.0,
                    message: panic_message(payload),
                });
            }
        };
        joins.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).insert(
            (b, a),
            CacheEntry {
                similarity,
                version_x: self.entries[b as usize].version,
                version_y: self.entries[a as usize].version,
            },
        );
        Ok(similarity)
    }

    /// Phase 1 of the paper's pipeline: screen `x` against `candidates`
    /// with the fast approximate method, in parallel, partitioning them
    /// into shortlisted / rejected / inadmissible. A candidate whose
    /// join panics lands in [`ScreenOutcome::failed`] while the others
    /// complete.
    pub fn screen(
        &self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
    ) -> Result<ScreenOutcome, EngineError> {
        Ok(self
            .screen_with_budget(x, candidates, &Budget::unlimited())?
            .into_value())
    }

    /// [`screen`](CsjEngine::screen) under a [`Budget`]. Candidates the
    /// budget never admitted land in [`ScreenOutcome::skipped`] and the
    /// returned [`Partial`] carries the exhaustion marker.
    pub fn screen_with_budget(
        &self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
        budget: &Budget,
    ) -> Result<Partial<ScreenOutcome>, EngineError> {
        let joins = AtomicU64::new(0);
        let rec = self.obs.start_recorder("screen");
        self.obs.on_query("screen");
        let (outcome, done, skipped) =
            match self.screen_budgeted(x, candidates, budget, &joins, Some(&rec)) {
                Ok(screened) => screened,
                Err(e) => return Err(self.trace_failure(rec, e)),
            };
        rec.end_phase("screen", 0);
        let exhausted = exhausted_marker(budget, &joins, done, skipped);
        self.finish_trace(rec, exhausted);
        Ok(Partial {
            value: outcome,
            exhausted,
            coverage: None,
        })
    }

    /// Close out a query whose recorder saw a hard error: the trace (if
    /// recording) lands in the flight recorder with a `failed:` outcome.
    fn trace_failure(&self, rec: QueryRecorder, e: EngineError) -> EngineError {
        if let Some(trace) = rec.finish(format!("failed:{e}")) {
            self.obs.record_trace(trace);
        }
        e
    }

    /// Close out a completed (possibly exhausted) query: count the
    /// exhaustion and file the trace.
    fn finish_trace(&self, rec: QueryRecorder, exhausted: Option<BudgetExhausted>) {
        if let Some(marker) = exhausted {
            self.obs.on_budget_exhausted(marker.reason);
            rec.note_budget(
                marker.reason.label(),
                marker.pairs_done,
                marker.pairs_skipped,
            );
        }
        if let Some(trace) = rec.finish(outcome_label(exhausted.map(|m| m.reason))) {
            self.obs.record_trace(trace);
        }
    }

    /// Screening core shared by the budgeted entry points. Returns the
    /// outcome plus (candidates processed, candidates skipped); `joins`
    /// accumulates this query's join count across phases.
    fn screen_budgeted(
        &self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
        budget: &Budget,
        joins: &AtomicU64,
        rec: Option<&QueryRecorder>,
    ) -> Result<(ScreenOutcome, u64, u64), EngineError> {
        self.community(x)?;
        for &c in candidates {
            self.community(c)?;
        }
        // Prepare every participant once (&mut phase), then fan the
        // actual joins out over shared Arcs (&self phase).
        let px = self.prepared(x.0);
        let prepared: Vec<Arc<PreparedCommunity>> =
            candidates.iter().map(|&c| self.prepared(c.0)).collect();
        let qopts = self
            .config
            .options
            .clone()
            .with_cancel(budget.cancel_token());

        let inputs: Vec<(CommunityHandle, Arc<PreparedCommunity>)> =
            candidates.iter().copied().zip(prepared).collect();
        let results = self.parallel_map(&inputs, |(cand, py)| {
            if budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
                // Trip the shared token so in-flight sibling joins stop
                // at their next per-row check too.
                budget.cancel();
                return (*cand, Screened::Skipped);
            }
            if let Err(e) = self.fault_hook(cand.0) {
                return (*cand, Screened::Failed(e));
            }
            let (b, a) = if px.len() <= py.len() {
                (&px, py)
            } else {
                (py, &px)
            };
            match self.join_prepared(
                self.config.screen_method,
                Exactness::Approximate,
                b,
                a,
                &qopts,
                rec,
            ) {
                Ok(similarity) => {
                    joins.fetch_add(1, Ordering::Relaxed);
                    (*cand, Screened::Scored(similarity))
                }
                Err(EngineError::Csj(CsjError::SizeConstraint { .. })) => {
                    (*cand, Screened::Inadmissible)
                }
                Err(EngineError::Cancelled) => {
                    joins.fetch_add(1, Ordering::Relaxed);
                    (*cand, Screened::Skipped)
                }
                Err(other) => (*cand, Screened::Failed(other)),
            }
        });

        let mut out = ScreenOutcome::default();
        let mut pairs_done = 0u64;
        let mut pairs_skipped = 0u64;
        let mut hard_error: Option<EngineError> = None;
        for (slot, (cand, _)) in results.into_iter().zip(&inputs) {
            match slot {
                // The worker itself panicked: contained at the
                // per-candidate boundary, reported against the handle.
                Err(message) => {
                    pairs_done += 1;
                    self.obs.on_join_panicked();
                    out.failed.push((
                        *cand,
                        EngineError::JoinPanicked {
                            handle: cand.0,
                            message,
                        },
                    ));
                }
                Ok((cand, Screened::Scored(s))) => {
                    pairs_done += 1;
                    if s.ratio() >= self.config.screen_threshold {
                        out.shortlisted.push((cand, s));
                    } else {
                        out.rejected.push((cand, s));
                    }
                }
                Ok((cand, Screened::Inadmissible)) => {
                    pairs_done += 1;
                    out.inadmissible.push(cand);
                }
                Ok((cand, Screened::Skipped)) => {
                    pairs_skipped += 1;
                    out.skipped.push(cand);
                }
                Ok((cand, Screened::Failed(e))) => {
                    pairs_done += 1;
                    // Faults and panics degrade per candidate; anything
                    // else is a real configuration/state error and is
                    // surfaced (first in candidate order) instead of
                    // being silently folded into "inadmissible".
                    if !matches!(
                        e,
                        EngineError::Faulted { .. } | EngineError::JoinPanicked { .. }
                    ) && hard_error.is_none()
                    {
                        hard_error = Some(e.clone());
                    }
                    out.failed.push((cand, e));
                }
            }
        }
        if let Some(e) = hard_error {
            return Err(e);
        }
        out.shortlisted
            .sort_by(|p, q| q.1.ratio().total_cmp(&p.1.ratio()));
        Ok((out, pairs_done, pairs_skipped))
    }

    /// The full two-phase pipeline of Section 3: screen `candidates`,
    /// then refine the shortlist with the exact method (cached) and
    /// return the refined ranking. Candidates whose join panicked or
    /// faulted are dropped from the ranking (use
    /// [`screen_with_budget`](CsjEngine::screen_with_budget) to see
    /// them); the query itself never aborts on a per-candidate panic.
    pub fn screen_and_refine(
        &self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
    ) -> Result<Vec<PairScore>, EngineError> {
        Ok(self
            .screen_and_refine_with_budget(x, candidates, &Budget::unlimited())?
            .into_value())
    }

    /// [`screen_and_refine`](CsjEngine::screen_and_refine) under a
    /// [`Budget`] shared across both phases. On exhaustion the refined
    /// ranking covers only the shortlist prefix the budget admitted.
    pub fn screen_and_refine_with_budget(
        &self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
        budget: &Budget,
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        self.ranked_query("screen_and_refine", x, candidates, budget)
    }

    /// The screen → refine pipeline shared by
    /// [`screen_and_refine_with_budget`](CsjEngine::screen_and_refine_with_budget)
    /// and [`top_k_similar_with_budget`](CsjEngine::top_k_similar_with_budget);
    /// `kind` labels the query in metrics and its flight-recorder trace.
    fn ranked_query(
        &self,
        kind: &'static str,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
        budget: &Budget,
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        let joins = AtomicU64::new(0);
        let rec = self.obs.start_recorder(kind);
        self.obs.on_query(kind);
        let (screened, mut done, mut skipped) =
            match self.screen_budgeted(x, candidates, budget, &joins, Some(&rec)) {
                Ok(screened) => screened,
                Err(e) => return Err(self.trace_failure(rec, e)),
            };
        rec.end_phase("screen", 0);
        let refine_start = rec.now_us();
        let qopts = self
            .config
            .options
            .clone()
            .with_cancel(budget.cancel_token());
        let shortlist = screened.shortlisted;
        let mut refined = Vec::with_capacity(shortlist.len());
        for (idx, &(cand, _)) in shortlist.iter().enumerate() {
            if budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
                budget.cancel();
                skipped += (shortlist.len() - idx) as u64;
                break;
            }
            match self.refine_pair(x, cand, &qopts, &joins, Some(&rec)) {
                Ok(similarity) => {
                    done += 1;
                    refined.push(PairScore {
                        x,
                        y: cand,
                        similarity,
                    });
                }
                // The refine join was truncated mid-flight (external
                // cancel): everything from here on is unprocessed.
                Err(EngineError::Cancelled) => {
                    skipped += (shortlist.len() - idx) as u64;
                    break;
                }
                // Panic/fault: drop this candidate, keep ranking the rest.
                Err(EngineError::JoinPanicked { .. }) | Err(EngineError::Faulted { .. }) => {
                    done += 1;
                }
                Err(other) => return Err(self.trace_failure(rec, other)),
            }
        }
        rec.end_phase("refine", refine_start);
        refined.sort_by(|p, q| q.similarity.ratio().total_cmp(&p.similarity.ratio()));
        let exhausted = exhausted_marker(budget, &joins, done, skipped);
        self.finish_trace(rec, exhausted);
        Ok(Partial {
            value: refined,
            exhausted,
            coverage: None,
        })
    }

    /// The `k` registered communities most similar to `x` (exact scores,
    /// via screen-and-refine over everything admissible).
    pub fn top_k_similar(
        &self,
        x: CommunityHandle,
        k: usize,
    ) -> Result<Vec<PairScore>, EngineError> {
        Ok(self
            .top_k_similar_with_budget(x, k, &Budget::unlimited())?
            .into_value())
    }

    /// [`top_k_similar`](CsjEngine::top_k_similar) under a [`Budget`]:
    /// on exhaustion the result is the best `k` of whatever was scored
    /// in time.
    pub fn top_k_similar_with_budget(
        &self,
        x: CommunityHandle,
        k: usize,
        budget: &Budget,
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        let candidates: Vec<CommunityHandle> = self.handles().filter(|&h| h != x).collect();
        let mut ranked = self.ranked_query("top_k", x, &candidates, budget)?;
        ranked.value.truncate(k);
        Ok(ranked)
    }

    /// Every admissible pair among the registered communities whose
    /// *exact* similarity reaches `threshold` (the broadcast-
    /// recommendation sweep of scenario ii.b).
    ///
    /// Uses the paper's two-phase strategy per pair: the cheap screening
    /// method first, refining only pairs whose screened similarity
    /// clears the threshold. Because approximate CSJ never over-counts,
    /// a pair screened *below* the threshold minus the screening margin
    /// cannot reach it exactly — but since greedy matchings are maximal
    /// (>= half the maximum), the safe skip bound is `threshold / 2`.
    ///
    /// Runs unbudgeted; the first panicked/faulted pair (if any) is
    /// surfaced as its error. Use
    /// [`pairs_above_with_budget`](CsjEngine::pairs_above_with_budget)
    /// for deadline-bounded, degradable sweeps.
    pub fn pairs_above(&self, threshold: f64) -> Result<Vec<PairScore>, EngineError> {
        let swept = self
            .pairs_above_with_budget(threshold, &Budget::unlimited(), None)?
            .into_value();
        if let Some((_, _, e)) = swept.failed.into_iter().next() {
            return Err(e);
        }
        Ok(swept.pairs)
    }

    /// [`pairs_above`](CsjEngine::pairs_above) under a [`Budget`], with
    /// resume. The sweep walks pairs in a canonical order; when the
    /// budget runs out it stops *before* the next pair and returns that
    /// position as [`PairsSweep::cursor`], so a later call (with a fresh
    /// budget) picks up exactly where this one left off — pairs already
    /// refined are served from the cache. Pairs whose join panicked or
    /// faulted land in [`PairsSweep::failed`] and the sweep carries on.
    pub fn pairs_above_with_budget(
        &self,
        threshold: f64,
        budget: &Budget,
        resume: Option<PairsCursor>,
    ) -> Result<Partial<PairsSweep>, EngineError> {
        self.sweep_budgeted(threshold, budget, resume, false)
    }

    /// Degraded broadcast sweep: *approximate only*. Each admissible
    /// pair gets one join with the screening (Ap-*) method and is
    /// reported when its approximate similarity reaches `threshold`;
    /// no exact refinement runs and the exact-similarity cache is
    /// neither consulted nor written. Because approximate CSJ never
    /// over-counts, every returned pair truly clears the threshold —
    /// the sweep can only *miss* pairs whose exact similarity is
    /// between `threshold` and `2 * threshold` of the reported bound
    /// (greedy maximal matchings reach at least half the maximum).
    /// This is the `pairs_above` rung of the service's degradation
    /// ladder; [`PairScore::similarity`] carries the Ap lower bound.
    pub fn pairs_above_approx_with_budget(
        &self,
        threshold: f64,
        budget: &Budget,
        resume: Option<PairsCursor>,
    ) -> Result<Partial<PairsSweep>, EngineError> {
        self.sweep_budgeted(threshold, budget, resume, true)
    }

    /// Sweep core shared by the exact and approximate (degraded)
    /// broadcast entry points.
    fn sweep_budgeted(
        &self,
        threshold: f64,
        budget: &Budget,
        resume: Option<PairsCursor>,
        approx: bool,
    ) -> Result<Partial<PairsSweep>, EngineError> {
        let n = self.entries.len() as u32;
        let joins = AtomicU64::new(0);
        let rec = self.obs.start_recorder("pairs_above");
        self.obs.on_query("pairs_above");
        let qopts = self
            .config
            .options
            .clone()
            .with_cancel(budget.cancel_token());
        let mut sweep = PairsSweep::default();
        let mut pairs_done = 0u64;
        let (start_i, start_j) = resume.map_or((0, 1), |c| (c.i, c.j));
        'outer: for i in start_i..n {
            let j_lo = if i == start_i {
                start_j.max(i + 1)
            } else {
                i + 1
            };
            for j in j_lo..n {
                let x = CommunityHandle(i);
                let y = CommunityHandle(j);
                if budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
                    budget.cancel();
                    sweep.cursor = Some(PairsCursor { i, j });
                    break 'outer;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    self.sweep_pair(x, y, threshold, &qopts, &joins, Some(&rec), approx)
                }));
                match outcome {
                    Err(payload) => {
                        pairs_done += 1;
                        self.obs.on_join_panicked();
                        sweep.failed.push((
                            x,
                            y,
                            EngineError::JoinPanicked {
                                handle: y.0,
                                message: panic_message(payload),
                            },
                        ));
                    }
                    Ok(Ok(Some(score))) => {
                        pairs_done += 1;
                        sweep.pairs.push(score);
                    }
                    Ok(Ok(None)) => pairs_done += 1,
                    // A join truncated mid-flight: this pair was not
                    // fully processed, so resume from it.
                    Ok(Err(EngineError::Cancelled)) => {
                        sweep.cursor = Some(PairsCursor { i, j });
                        break 'outer;
                    }
                    Ok(Err(e)) => match e {
                        EngineError::JoinPanicked { .. } | EngineError::Faulted { .. } => {
                            pairs_done += 1;
                            sweep.failed.push((x, y, e));
                        }
                        other => return Err(self.trace_failure(rec, other)),
                    },
                }
            }
        }
        sweep
            .pairs
            .sort_by(|p, q| q.similarity.ratio().total_cmp(&p.similarity.ratio()));
        rec.end_phase("sweep", 0);
        let pairs_skipped = sweep.cursor.map_or(0, |c| Self::remaining_pairs(n, c));
        let exhausted = exhausted_marker(budget, &joins, pairs_done, pairs_skipped);
        self.finish_trace(rec, exhausted);
        Ok(Partial {
            value: sweep,
            exhausted,
            coverage: None,
        })
    }

    /// One pair of the broadcast sweep: admissibility, cheap screen with
    /// the safe `threshold / 2` skip bound, then cached exact refine.
    /// With `approx` the screen join *is* the answer (degraded mode):
    /// accept on the approximate score, skip refinement and the cache.
    #[allow(clippy::too_many_arguments)]
    fn sweep_pair(
        &self,
        x: CommunityHandle,
        y: CommunityHandle,
        threshold: f64,
        qopts: &CsjOptions,
        joins: &AtomicU64,
        rec: Option<&QueryRecorder>,
        approx: bool,
    ) -> Result<Option<PairScore>, EngineError> {
        let (b, a) = self.oriented(x, y)?;
        if csj_core::validate_sizes(
            self.entries[b as usize].community.len(),
            self.entries[a as usize].community.len(),
        )
        .is_err()
        {
            return Ok(None);
        }
        if approx {
            self.fault_hook(b)?;
            self.fault_hook(a)?;
            let pb = self.prepared(b);
            let pa = self.prepared(a);
            let screened = self.join_prepared(
                self.config.screen_method,
                Exactness::Approximate,
                &pb,
                &pa,
                qopts,
                rec,
            )?;
            joins.fetch_add(1, Ordering::Relaxed);
            return Ok((screened.ratio() >= threshold).then_some(PairScore {
                x,
                y,
                similarity: screened,
            }));
        }
        // Phase 1: cheap screen (unless already cached exactly).
        if self.cached_similarity(b, a).is_none() {
            self.fault_hook(b)?;
            self.fault_hook(a)?;
            let pb = self.prepared(b);
            let pa = self.prepared(a);
            let screened = self.join_prepared(
                self.config.screen_method,
                Exactness::Approximate,
                &pb,
                &pa,
                qopts,
                rec,
            )?;
            joins.fetch_add(1, Ordering::Relaxed);
            // Maximal matchings reach at least half the maximum, so a
            // screened ratio below threshold/2 proves the exact ratio is
            // below threshold.
            if screened.ratio() < threshold / 2.0 {
                return Ok(None);
            }
        }
        // Phase 2: exact (cached).
        let similarity = self.refine_pair(x, y, qopts, joins, rec)?;
        if similarity.ratio() >= threshold {
            Ok(Some(PairScore { x, y, similarity }))
        } else {
            Ok(None)
        }
    }

    /// Number of pairs a sweep starting at `cursor` still has to visit
    /// (the cursor's own pair included).
    fn remaining_pairs(n: u32, cursor: PairsCursor) -> u64 {
        let n = u64::from(n);
        let rest = n.saturating_sub(u64::from(cursor.i) + 1);
        n.saturating_sub(u64::from(cursor.j)) + rest.saturating_sub(1) * rest / 2
    }

    /// Resolve the cost-based plan for one pair without running a join:
    /// which method the planner would pick under `exactness`, its cost
    /// estimate and the ranked alternatives. This is what `csj explain`
    /// surfaces, and what an `Auto` join of the pair would execute
    /// (modulo feedback accumulated in between).
    pub fn plan_pair(
        &self,
        x: CommunityHandle,
        y: CommunityHandle,
        exactness: Exactness,
    ) -> Result<QueryPlan, EngineError> {
        let (b, a) = self.oriented(x, y)?;
        let pb = self.prepared(b);
        let pa = self.prepared(a);
        let input = PlanInput::from_prepared(&pb, &pa, exactness);
        Ok(self.planner.plan(&input).0)
    }

    /// The planner-ranked degradation ladder for an exact `primary`
    /// method: *fastest-exact → hybrid → approximate*, always ending on
    /// [`CsjMethod::approximate_counterpart`] (the documented 2x-sound
    /// rung). With a `pair` the ladder is costed on that instance;
    /// without one it is costed on a registry-average instance (the
    /// broadcast-query case). Non-exact primaries get a single-rung
    /// ladder of their own counterpart.
    pub fn degradation_ladder_for(
        &self,
        primary: CsjMethod,
        pair: Option<(CommunityHandle, CommunityHandle)>,
    ) -> Vec<CsjMethod> {
        self.degradation_ladder_with_source(primary, pair).0
    }

    /// [`degradation_ladder_for`](CsjEngine::degradation_ladder_for),
    /// plus the ranking's provenance: whether latency feedback for
    /// `primary` refined the cost model ([`PlanSource::Refined`]) or
    /// the static table ranked alone. Degraded requests surface this in
    /// their traces so an operator can tell a cold-start ladder from a
    /// learned one.
    pub fn degradation_ladder_with_source(
        &self,
        primary: CsjMethod,
        pair: Option<(CommunityHandle, CommunityHandle)>,
    ) -> (Vec<CsjMethod>, PlanSource) {
        let input = pair
            .and_then(|(x, y)| {
                let (b, a) = self.oriented(x, y).ok()?;
                let pb = self.prepared(b);
                let pa = self.prepared(a);
                Some(PlanInput::from_prepared(&pb, &pa, Exactness::Any))
            })
            .unwrap_or_else(|| self.average_plan_input());
        self.planner.ladder_with_source(primary, &input)
    }

    /// A representative [`PlanInput`] when no concrete pair is in play:
    /// mean registered community size, the engine's `d` and eps, the
    /// default density.
    fn average_plan_input(&self) -> PlanInput {
        let total: usize = self.entries.iter().map(|e| e.community.len()).sum();
        let mean = total.checked_div(self.entries.len()).unwrap_or(1).max(1);
        PlanInput::new(mean, mean, self.d, self.config.options.eps, Exactness::Any)
    }

    /// Point-in-time snapshot of every `csj_*` metric (counters,
    /// gauges, latency and depth histograms). Render it with
    /// [`MetricsSnapshot::to_prometheus`] or
    /// [`MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let cached = self.cache.lock().unwrap_or_else(|e| e.into_inner()).len();
        self.obs.snapshot(self.entries.len(), cached)
    }

    /// Count `n` records quarantined by a data loader in the
    /// `csj_data_quarantined_total` metric. The loaders themselves are
    /// observability-free (they return a quarantine report); callers
    /// that loaded data *for this engine* fold the report in here.
    pub fn note_quarantined(&self, n: u64) {
        self.obs.on_quarantined(n);
    }

    /// The `n` most recent query traces from the flight recorder,
    /// oldest first. Empty when observability is disabled.
    pub fn traces(&self, n: usize) -> Vec<QueryTrace> {
        self.obs.traces(n)
    }

    /// The `n` most recent forensic records from the slow-query log
    /// (queries over [`ObsConfig::slow_capacity`]'s threshold or with a
    /// non-`completed` outcome), oldest first. Each record carries the
    /// full span tree — plan decision, per-join telemetry, budget
    /// state — of one pathological query.
    ///
    /// [`ObsConfig::slow_capacity`]: crate::ObsConfig::slow_capacity
    pub fn slow_queries(&self, n: usize) -> Vec<ForensicRecord> {
        self.obs.slow_queries(n)
    }

    /// Slow-query log statistics: `(offered, captured, threshold_us)`.
    pub fn slow_query_stats(&self) -> (u64, u64, u64) {
        let log = self.obs.slow_log();
        (log.offered(), log.captured(), log.threshold_us())
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            communities: self.entries.len(),
            cached_pairs: self.cache.lock().unwrap_or_else(|e| e.into_inner()).len(),
            joins_executed: self.joins_executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            telemetry: *self.telemetry.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Order-preserving parallel map over a slice (workers steal by
    /// index; results land in input order). Each item runs inside its
    /// own `catch_unwind` boundary: a panic in `f` is captured as
    /// `Err(message)` in that item's slot — prefixed with the item's
    /// index, so the report names *which* input was poisoned — while
    /// every other item completes normally.
    fn parallel_map<'s, T: Sync, R: Send>(
        &'s self,
        items: &'s [T],
        f: impl Fn(&T) -> R + Sync + 's,
    ) -> Vec<Result<R, String>> {
        let run_one = |i: usize, item: &T| {
            catch_unwind(AssertUnwindSafe(|| f(item)))
                .map_err(|payload| format!("item {i}: {}", panic_message(payload)))
        };
        let threads = self.config.threads.max(1).min(items.len().max(1));
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| run_one(i, item))
                .collect();
        }
        let mut results: Vec<Option<Result<R, String>>> = Vec::with_capacity(items.len());
        results.resize_with(items.len(), || None);
        let results_cell = std::sync::Mutex::new(&mut results);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = run_one(i, &items[i]);
                    // Worker panics are caught above, so the mutex can't
                    // be poisoned by `f`; recover defensively anyway.
                    results_cell.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(r);
                });
            }
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                // A lost slot means a worker died between claiming the
                // index and reporting — name the item instead of panicking
                // the whole query.
                r.unwrap_or_else(|| Err(format!("item {i}: worker lost before reporting a result")))
            })
            .collect()
    }
}

/// Per-candidate terminal state inside one shard of a ranked query.
/// Shards report these per member; the merge folds them into the
/// ranking, the budget marker and the [`Coverage`] report.
enum ShardScored {
    /// Never screened: the budget ran out, or the attempt was cancelled
    /// (slice timeout / hedge race / global cancel) before its turn.
    Skipped,
    /// Screened: the pair violates the size constraint.
    Inadmissible,
    /// The screen join failed (panic, injected fault, or hard error).
    ScreenFailed(EngineError),
    /// Screened below the refine threshold.
    Rejected,
    /// Screened and refined: (screen score, exact score). The screen
    /// score orders the merge exactly like the flat pipeline's
    /// shortlist.
    Refined(Similarity, Similarity),
    /// Shortlisted, but the refine join panicked or faulted (dropped
    /// from the ranking, as on the flat path).
    RefineDropped,
    /// Shortlisted, but the budget or the attempt's cancel token ran
    /// out before its refine join.
    RefineSkipped,
}

/// Per-pair terminal state inside one shard of a sharded broadcast
/// sweep.
enum SweptPair {
    /// Exact similarity reached the threshold.
    Hit(PairScore),
    /// Processed, below the threshold (or inadmissible).
    Miss,
    /// Never processed: budget or attempt cancellation.
    Skipped,
    /// The pair's join panicked or faulted (or a hard error, surfaced
    /// at merge).
    Failed(EngineError),
}

/// Sharded execution of the multi-pair queries. Candidates are
/// partitioned into mass-balanced shards ([`plan_shards`] over
/// [`community_mass`], so one giant community cannot serialise the
/// query behind it); each shard runs under its own deadline slice and
/// panic boundary on the supervised [`ShardExecutor`] pool, stragglers
/// are hedged, and the surviving per-unit states merge into a result
/// that is bit-identical to the flat pipeline when every shard
/// completes. Lost shards shrink the attached [`Coverage`] report
/// instead of failing the query. See `DESIGN.md` §17.
impl CsjEngine {
    /// How many shards a query over `units` work units gets: the
    /// configured count ([`ShardConfig::shards`]; 0 = auto, one per
    /// engine thread), clamped to the unit count.
    fn effective_shards(&self, units: usize) -> usize {
        let want = if self.config.shard.shards > 0 {
            self.config.shard.shards
        } else {
            self.config.threads
        };
        want.clamp(1, units.max(1))
    }

    /// The shard executor for one query. It shares
    /// [`EngineConfig::threads`] with the flat path, so sharding never
    /// oversubscribes the host.
    fn shard_executor(&self) -> ShardExecutor {
        let executor = ShardExecutor::new(self.config.shard.clone(), self.config.threads);
        #[cfg(feature = "fault-injection")]
        let executor = executor.with_faults(self.shard_faults.clone());
        executor
    }

    /// The skew-aware layout a sharded ranked query over `candidates`
    /// would use: members balanced by part-sum mass, not by count.
    /// This is what `csj explain` surfaces.
    pub fn shard_layout(&self, candidates: &[CommunityHandle]) -> Result<ShardLayout, EngineError> {
        let masses = self.candidate_masses(candidates)?;
        Ok(plan_shards(
            &masses,
            self.effective_shards(candidates.len()),
        ))
    }

    /// Part-sum masses of `candidates` (validating every handle).
    fn candidate_masses(&self, candidates: &[CommunityHandle]) -> Result<Vec<u64>, EngineError> {
        candidates
            .iter()
            .map(|&c| Ok(community_mass(self.community(c)?)))
            .collect()
    }

    /// Sharded [`top_k_similar`](CsjEngine::top_k_similar), unbudgeted.
    pub fn top_k_similar_sharded(
        &self,
        x: CommunityHandle,
        k: usize,
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        self.top_k_similar_sharded_with_budget(x, k, &Budget::unlimited())
    }

    /// Sharded
    /// [`top_k_similar_with_budget`](CsjEngine::top_k_similar_with_budget):
    /// same ranking when every shard completes, a [`Coverage`] report
    /// when one does not.
    pub fn top_k_similar_sharded_with_budget(
        &self,
        x: CommunityHandle,
        k: usize,
        budget: &Budget,
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        let candidates: Vec<CommunityHandle> = self.handles().filter(|&h| h != x).collect();
        let mut ranked = self.ranked_query_sharded("top_k", x, &candidates, budget)?;
        ranked.value.truncate(k);
        Ok(ranked)
    }

    /// Sharded [`screen_and_refine`](CsjEngine::screen_and_refine),
    /// unbudgeted.
    pub fn screen_and_refine_sharded(
        &self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        self.screen_and_refine_sharded_with_budget(x, candidates, &Budget::unlimited())
    }

    /// Sharded
    /// [`screen_and_refine_with_budget`](CsjEngine::screen_and_refine_with_budget).
    pub fn screen_and_refine_sharded_with_budget(
        &self,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
        budget: &Budget,
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        self.ranked_query_sharded("screen_and_refine", x, candidates, budget)
    }

    /// The sharded screen → refine pipeline. Fault-free runs produce
    /// bit-identical results to [`ranked_query`](CsjEngine::ranked_query)
    /// (the parity suite pins this); budget exhaustion inside a shard
    /// degrades exactly like the flat path, and lost shards degrade
    /// through the coverage channel instead.
    fn ranked_query_sharded(
        &self,
        kind: &'static str,
        x: CommunityHandle,
        candidates: &[CommunityHandle],
        budget: &Budget,
    ) -> Result<Partial<Vec<PairScore>>, EngineError> {
        let joins = AtomicU64::new(0);
        let rec = self.obs.start_recorder(kind);
        self.obs.on_query(kind);
        if let Err(e) = self.community(x) {
            return Err(self.trace_failure(rec, e));
        }
        let masses = match self.candidate_masses(candidates) {
            Ok(masses) => masses,
            Err(e) => return Err(self.trace_failure(rec, e)),
        };
        let layout = plan_shards(&masses, self.effective_shards(candidates.len()));
        let px = self.prepared(x.0);
        let prepared: Vec<Arc<PreparedCommunity>> =
            candidates.iter().map(|&c| self.prepared(c.0)).collect();
        let shard_start = rec.now_us();
        let reports =
            self.shard_executor()
                .run(layout.shards.len(), &budget.cancel_token(), |ctx| {
                    self.ranked_shard_task(
                        x,
                        &px,
                        candidates,
                        &prepared,
                        &layout.shards[ctx.shard],
                        ctx,
                        budget,
                        &joins,
                        Some(&rec),
                    )
                });
        // Fold shard reports: coverage fates, per-shard spans, and the
        // surviving per-candidate states (a lost shard leaves `None` for
        // every member).
        let mut coverage = Coverage::default();
        let mut states: Vec<Option<ShardScored>> = Vec::with_capacity(candidates.len());
        states.resize_with(candidates.len(), || None);
        let mut elapsed_us = Vec::with_capacity(reports.len());
        for report in reports {
            coverage.dispatched += 1;
            match (&report.value, report.outcome) {
                (Some(_), outcome) => {
                    coverage.completed += 1;
                    if outcome == ShardOutcome::Hedged {
                        coverage.hedged += 1;
                    }
                }
                (None, ShardOutcome::Cancelled) => coverage.cancelled += 1,
                (None, _) => coverage.failed += 1,
            }
            let us = u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX);
            elapsed_us.push(us);
            rec.record_shard(
                report.shard,
                report.outcome.label(),
                layout.shards[report.shard].len(),
                report.attempts,
                us,
                shard_start,
            );
            if let Some(values) = report.value {
                for (idx, state) in values {
                    states[idx] = Some(state);
                }
            }
        }
        rec.end_phase("shards", shard_start);
        let mut refined: Vec<(usize, Similarity, Similarity)> = Vec::new();
        let mut done = 0u64;
        let mut budget_skips = 0u64;
        let mut hard_error: Option<EngineError> = None;
        for (idx, state) in states.iter().enumerate() {
            match state {
                None => coverage.units_skipped += 1,
                Some(ShardScored::Skipped) => {
                    coverage.units_skipped += 1;
                    budget_skips += 1;
                }
                Some(ShardScored::Inadmissible) | Some(ShardScored::Rejected) => {
                    coverage.units_screened += 1;
                    done += 1;
                }
                Some(ShardScored::ScreenFailed(e)) => {
                    coverage.units_screened += 1;
                    done += 1;
                    // Same rule as the flat path: faults and panics
                    // degrade per candidate, anything else is a real
                    // error and is surfaced (first in candidate order).
                    if !matches!(
                        e,
                        EngineError::Faulted { .. } | EngineError::JoinPanicked { .. }
                    ) && hard_error.is_none()
                    {
                        hard_error = Some(e.clone());
                    }
                }
                Some(ShardScored::Refined(screen, exact)) => {
                    coverage.units_screened += 1;
                    done += 2;
                    refined.push((idx, *screen, *exact));
                }
                Some(ShardScored::RefineDropped) => {
                    coverage.units_screened += 1;
                    done += 2;
                }
                Some(ShardScored::RefineSkipped) => {
                    coverage.units_screened += 1;
                    done += 1;
                    budget_skips += 1;
                }
            }
        }
        if let Some(e) = hard_error {
            return Err(self.trace_failure(rec, e));
        }
        debug_assert!(
            coverage.identity_holds(),
            "shard fate identity: {coverage:?}"
        );
        debug_assert_eq!(
            coverage.units_screened + coverage.units_skipped,
            candidates.len() as u64,
            "every candidate is either screened or skipped"
        );
        // Deterministic merge, bit-identical to the flat pipeline:
        // `refined` is in candidate order, so the stable sort by screen
        // score reproduces the global shortlist order and the stable
        // sort by exact score reproduces the final ranking (ties keep
        // shortlist order, exactly as the flat path's sort does).
        refined.sort_by(|p, q| q.1.ratio().total_cmp(&p.1.ratio()));
        refined.sort_by(|p, q| q.2.ratio().total_cmp(&p.2.ratio()));
        let value: Vec<PairScore> = refined
            .into_iter()
            .map(|(idx, _, exact)| PairScore {
                x,
                y: candidates[idx],
                similarity: exact,
            })
            .collect();
        // Skips caused by slice timeouts or lost shards are coverage
        // loss, not budget exhaustion: the marker only fires when the
        // budget itself stopped admitting work.
        let marker_skips = if budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
            budget_skips
        } else {
            0
        };
        let exhausted = exhausted_marker(budget, &joins, done, marker_skips);
        self.obs.on_shards(&coverage, &elapsed_us);
        rec.note_coverage(coverage);
        self.finish_trace(rec, exhausted);
        Ok(Partial {
            value,
            exhausted,
            coverage: Some(coverage),
        })
    }

    /// One shard's screen → refine pass over its member candidates.
    /// Runs on a pool worker inside the shard's panic boundary; `ctx`
    /// carries the attempt's cancel token, which the supervisor trips
    /// on slice timeout, hedge races and global cancellation.
    #[allow(clippy::too_many_arguments)]
    fn ranked_shard_task(
        &self,
        x: CommunityHandle,
        px: &Arc<PreparedCommunity>,
        candidates: &[CommunityHandle],
        prepared: &[Arc<PreparedCommunity>],
        members: &[usize],
        ctx: &ShardCtx,
        budget: &Budget,
        joins: &AtomicU64,
        rec: Option<&QueryRecorder>,
    ) -> Vec<(usize, ShardScored)> {
        let qopts = self.config.options.clone().with_cancel(ctx.cancel.clone());
        let mut out = Vec::with_capacity(members.len());
        let mut shortlist: Vec<(usize, Similarity)> = Vec::new();
        // Phase 1: screen the members (ascending candidate order).
        for &idx in members {
            let cand = candidates[idx];
            if budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
                budget.cancel();
                out.push((idx, ShardScored::Skipped));
                continue;
            }
            if ctx.cancel.is_cancelled() {
                out.push((idx, ShardScored::Skipped));
                continue;
            }
            let py = &prepared[idx];
            let screened = catch_unwind(AssertUnwindSafe(|| {
                self.fault_hook(cand.0)?;
                let (b, a) = if px.len() <= py.len() {
                    (px, py)
                } else {
                    (py, px)
                };
                self.join_prepared(
                    self.config.screen_method,
                    Exactness::Approximate,
                    b,
                    a,
                    &qopts,
                    rec,
                )
            }));
            match screened {
                Err(payload) => {
                    self.obs.on_join_panicked();
                    out.push((
                        idx,
                        ShardScored::ScreenFailed(EngineError::JoinPanicked {
                            handle: cand.0,
                            message: panic_message(payload),
                        }),
                    ));
                }
                Ok(Ok(similarity)) => {
                    joins.fetch_add(1, Ordering::Relaxed);
                    if similarity.ratio() >= self.config.screen_threshold {
                        shortlist.push((idx, similarity));
                    } else {
                        out.push((idx, ShardScored::Rejected));
                    }
                }
                Ok(Err(EngineError::Csj(CsjError::SizeConstraint { .. }))) => {
                    out.push((idx, ShardScored::Inadmissible));
                }
                Ok(Err(EngineError::Cancelled)) => {
                    joins.fetch_add(1, Ordering::Relaxed);
                    out.push((idx, ShardScored::Skipped));
                }
                Ok(Err(other)) => out.push((idx, ShardScored::ScreenFailed(other))),
            }
        }
        // Phase 2: refine the shard-local shortlist, best screen score
        // first (stable, so ties keep candidate order — the global
        // merge depends on this to reproduce the flat ordering).
        shortlist.sort_by(|p, q| q.1.ratio().total_cmp(&p.1.ratio()));
        let mut stop = false;
        for (idx, screen_sim) in shortlist {
            if !stop && budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
                budget.cancel();
                stop = true;
            }
            if !stop && ctx.cancel.is_cancelled() {
                stop = true;
            }
            if stop {
                out.push((idx, ShardScored::RefineSkipped));
                continue;
            }
            match self.refine_pair(x, candidates[idx], &qopts, joins, rec) {
                Ok(exact) => out.push((idx, ShardScored::Refined(screen_sim, exact))),
                Err(EngineError::Cancelled) => {
                    stop = true;
                    out.push((idx, ShardScored::RefineSkipped));
                }
                Err(EngineError::JoinPanicked { .. }) | Err(EngineError::Faulted { .. }) => {
                    out.push((idx, ShardScored::RefineDropped));
                }
                Err(other) => out.push((idx, ShardScored::ScreenFailed(other))),
            }
        }
        out
    }

    /// Sharded [`pairs_above`](CsjEngine::pairs_above), unbudgeted.
    pub fn pairs_above_sharded(&self, threshold: f64) -> Result<Partial<PairsSweep>, EngineError> {
        self.pairs_above_sharded_with_budget(threshold, &Budget::unlimited())
    }

    /// Sharded broadcast sweep: the all-pairs workload is grouped into
    /// mass-balanced community groups and each group-pair becomes one
    /// shard task. Unlike
    /// [`pairs_above_with_budget`](CsjEngine::pairs_above_with_budget)
    /// there is no resume cursor ([`PairsSweep::cursor`] stays `None`):
    /// lost work is reported through the [`Coverage`] channel instead
    /// of a resumable position, because shards complete out of
    /// canonical order.
    pub fn pairs_above_sharded_with_budget(
        &self,
        threshold: f64,
        budget: &Budget,
    ) -> Result<Partial<PairsSweep>, EngineError> {
        let joins = AtomicU64::new(0);
        let rec = self.obs.start_recorder("pairs_above");
        self.obs.on_query("pairs_above");
        let n = self.entries.len();
        let masses: Vec<u64> = self
            .entries
            .iter()
            .map(|e| community_mass(&e.community))
            .collect();
        let tasks =
            Self::plan_pair_tasks(&masses, self.effective_shards(n * n.saturating_sub(1) / 2));
        if tasks.is_empty() {
            let coverage = Coverage::default();
            rec.note_coverage(coverage);
            self.finish_trace(rec, None);
            return Ok(Partial {
                value: PairsSweep::default(),
                exhausted: None,
                coverage: Some(coverage),
            });
        }
        let total_pairs: u64 = tasks.iter().map(|t| t.len() as u64).sum();
        let shard_start = rec.now_us();
        let reports = self
            .shard_executor()
            .run(tasks.len(), &budget.cancel_token(), |ctx| {
                self.sweep_shard_task(
                    &tasks[ctx.shard],
                    threshold,
                    ctx,
                    budget,
                    &joins,
                    Some(&rec),
                )
            });
        let mut coverage = Coverage::default();
        let mut elapsed_us = Vec::with_capacity(reports.len());
        let mut swept: Vec<((u32, u32), SweptPair)> = Vec::new();
        for report in reports {
            coverage.dispatched += 1;
            match (&report.value, report.outcome) {
                (Some(_), outcome) => {
                    coverage.completed += 1;
                    if outcome == ShardOutcome::Hedged {
                        coverage.hedged += 1;
                    }
                }
                (None, ShardOutcome::Cancelled) => coverage.cancelled += 1,
                (None, _) => coverage.failed += 1,
            }
            let us = u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX);
            elapsed_us.push(us);
            rec.record_shard(
                report.shard,
                report.outcome.label(),
                tasks[report.shard].len(),
                report.attempts,
                us,
                shard_start,
            );
            if let Some(values) = report.value {
                swept.extend(values);
            } else {
                coverage.units_skipped += tasks[report.shard].len() as u64;
            }
        }
        rec.end_phase("shards", shard_start);
        // Merge in canonical (lexicographic) pair order first, so the
        // final ranking is independent of shard layout and completion
        // order. Pair keys are unique, so the unstable sort is total.
        swept.sort_unstable_by_key(|(pair, _)| *pair);
        let mut sweep = PairsSweep::default();
        let mut done = 0u64;
        let mut budget_skips = 0u64;
        let mut hard_error: Option<EngineError> = None;
        for (pair, state) in swept {
            match state {
                SweptPair::Hit(score) => {
                    coverage.units_screened += 1;
                    done += 1;
                    sweep.pairs.push(score);
                }
                SweptPair::Miss => {
                    coverage.units_screened += 1;
                    done += 1;
                }
                SweptPair::Skipped => {
                    coverage.units_skipped += 1;
                    budget_skips += 1;
                }
                SweptPair::Failed(e) => {
                    coverage.units_screened += 1;
                    done += 1;
                    if !matches!(
                        e,
                        EngineError::Faulted { .. } | EngineError::JoinPanicked { .. }
                    ) && hard_error.is_none()
                    {
                        hard_error = Some(e.clone());
                    }
                    sweep
                        .failed
                        .push((CommunityHandle(pair.0), CommunityHandle(pair.1), e));
                }
            }
        }
        if let Some(e) = hard_error {
            return Err(self.trace_failure(rec, e));
        }
        debug_assert!(
            coverage.identity_holds(),
            "shard fate identity: {coverage:?}"
        );
        debug_assert_eq!(
            coverage.units_screened + coverage.units_skipped,
            total_pairs,
            "every pair is either screened or skipped"
        );
        sweep
            .pairs
            .sort_by(|p, q| q.similarity.ratio().total_cmp(&p.similarity.ratio()));
        let marker_skips = if budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
            budget_skips
        } else {
            0
        };
        let exhausted = exhausted_marker(budget, &joins, done, marker_skips);
        self.obs.on_shards(&coverage, &elapsed_us);
        rec.note_coverage(coverage);
        self.finish_trace(rec, exhausted);
        Ok(Partial {
            value: sweep,
            exhausted,
            coverage: Some(coverage),
        })
    }

    /// Partition the all-pairs workload for sharding: communities are
    /// grouped into `g` mass-balanced groups (the largest `g` with
    /// `g*(g+1)/2 <= target` tasks) and every group pair — diagonal
    /// included — becomes one task holding its canonical `(i < j)`
    /// pairs in lexicographic order. Each unordered pair lands in
    /// exactly one task.
    fn plan_pair_tasks(masses: &[u64], target: usize) -> Vec<Vec<(u32, u32)>> {
        let n = masses.len();
        if n < 2 {
            return Vec::new();
        }
        let mut g = 1usize;
        while (g + 1) * (g + 2) / 2 <= target && g < n {
            g += 1;
        }
        let groups = plan_shards(masses, g).shards;
        let mut tasks = Vec::new();
        for gi in 0..groups.len() {
            for gj in gi..groups.len() {
                let mut pairs: Vec<(u32, u32)> = Vec::new();
                if gi == gj {
                    let members = &groups[gi];
                    for (p, &u) in members.iter().enumerate() {
                        for &v in &members[p + 1..] {
                            pairs.push((u as u32, v as u32));
                        }
                    }
                } else {
                    for &u in &groups[gi] {
                        for &v in &groups[gj] {
                            let (lo, hi) = if u < v { (u, v) } else { (v, u) };
                            pairs.push((lo as u32, hi as u32));
                        }
                    }
                }
                pairs.sort_unstable();
                if !pairs.is_empty() {
                    tasks.push(pairs);
                }
            }
        }
        tasks
    }

    /// One shard task of the sharded broadcast sweep: its canonical
    /// pairs in lexicographic order, each through the same
    /// screen-then-refine logic as the flat sweep, inside the shard's
    /// panic boundary.
    fn sweep_shard_task(
        &self,
        pairs: &[(u32, u32)],
        threshold: f64,
        ctx: &ShardCtx,
        budget: &Budget,
        joins: &AtomicU64,
        rec: Option<&QueryRecorder>,
    ) -> Vec<((u32, u32), SweptPair)> {
        let qopts = self.config.options.clone().with_cancel(ctx.cancel.clone());
        let mut out = Vec::with_capacity(pairs.len());
        let mut stop = false;
        for &(i, j) in pairs {
            if !stop && budget.exceeded(joins.load(Ordering::Relaxed)).is_some() {
                budget.cancel();
                stop = true;
            }
            if !stop && ctx.cancel.is_cancelled() {
                stop = true;
            }
            if stop {
                out.push(((i, j), SweptPair::Skipped));
                continue;
            }
            let x = CommunityHandle(i);
            let y = CommunityHandle(j);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.sweep_pair(x, y, threshold, &qopts, joins, rec, false)
            }));
            match outcome {
                Err(payload) => {
                    self.obs.on_join_panicked();
                    out.push((
                        (i, j),
                        SweptPair::Failed(EngineError::JoinPanicked {
                            handle: j,
                            message: panic_message(payload),
                        }),
                    ));
                }
                Ok(Ok(Some(score))) => out.push(((i, j), SweptPair::Hit(score))),
                Ok(Ok(None)) => out.push(((i, j), SweptPair::Miss)),
                Ok(Err(EngineError::Cancelled)) => {
                    stop = true;
                    out.push(((i, j), SweptPair::Skipped));
                }
                Ok(Err(e)) => out.push(((i, j), SweptPair::Failed(e))),
            }
        }
        out
    }
}

#[cfg(feature = "fault-injection")]
impl CsjEngine {
    /// Install a chaos plan; subsequent joins hit its faults. Part of
    /// the fault-injection test harness, compiled only under the
    /// `fault-injection` feature.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Remove any installed chaos plan.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Install a shard-boundary chaos plan; subsequent *sharded*
    /// queries dispatch attempts through it (kills, stalls, injected
    /// panics). Compiled only under the `fault-injection` feature.
    pub fn inject_shard_faults(&mut self, plan: csj_shard::ShardFaultPlan) {
        self.shard_faults = Some(Arc::new(plan));
    }

    /// Remove any installed shard chaos plan.
    pub fn clear_shard_faults(&mut self) {
        self.shard_faults = None;
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ExhaustReason;
    use std::time::Duration;

    fn community(name: &str, rows: &[[u32; 2]]) -> Community {
        Community::from_rows(
            name,
            2,
            rows.iter().enumerate().map(|(i, v)| (i as u64, v.to_vec())),
        )
        .expect("well-formed")
    }

    fn engine_with_three() -> (CsjEngine, CommunityHandle, CommunityHandle, CommunityHandle) {
        let mut engine = CsjEngine::new(2, EngineConfig::new(1));
        // anchor: 4 users; near: 3 of 4 match; far: none match.
        let anchor = community("anchor", &[[1, 1], [5, 5], [9, 9], [13, 13]]);
        let near = community("near", &[[1, 2], [5, 5], [9, 8], [100, 100]]);
        let far = community("far", &[[50, 0], [60, 0], [70, 0], [80, 0]]);
        let a = engine.register(anchor).unwrap();
        let n = engine.register(near).unwrap();
        let f = engine.register(far).unwrap();
        (engine, a, n, f)
    }

    #[test]
    fn register_and_lookup() {
        let (engine, a, _, _) = engine_with_three();
        assert_eq!(engine.find("anchor"), Some(a));
        assert_eq!(engine.find("nope"), None);
        assert_eq!(engine.community(a).unwrap().len(), 4);
        assert_eq!(engine.stats().communities, 3);
    }

    #[test]
    fn register_rejects_bad_input() {
        let mut engine = CsjEngine::new(2, EngineConfig::new(1));
        engine.register(community("x", &[[1, 1]])).unwrap();
        assert_eq!(
            engine.register(community("x", &[[2, 2]])),
            Err(EngineError::DuplicateName("x".into()))
        );
        let wrong_d = Community::new("y", 3);
        assert!(matches!(
            engine.register(wrong_d),
            Err(EngineError::DimensionMismatch {
                engine_d: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn similarity_is_cached_and_symmetric() {
        let (engine, a, n, _) = engine_with_three();
        let s1 = engine.similarity(a, n).unwrap();
        assert_eq!(s1.matched, 3);
        let before = engine.stats().joins_executed;
        let s2 = engine.similarity(n, a).unwrap(); // symmetric: same cache slot
        assert_eq!(s1, s2);
        assert_eq!(engine.stats().joins_executed, before, "must be a cache hit");
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn joins_accumulate_telemetry() {
        let (mut engine, a, n, _) = engine_with_three();
        assert_eq!(engine.stats().telemetry, JoinTelemetry::default());

        engine.similarity(a, n).unwrap();
        let after_one = engine.stats().telemetry;
        assert!(after_one.rows_driven > 0, "screen+refine drove rows");
        assert!(after_one.events.matches >= 3, "three admissible pairs seen");
        assert!(after_one.matcher_flushes >= 1, "exact refinement flushed");

        // A cache hit runs no kernel, so telemetry must not move.
        engine.similarity(n, a).unwrap();
        assert_eq!(engine.stats().telemetry, after_one);

        // Invalidate and re-join: counters only ever grow.
        engine.upsert_user(n, 0, &[1, 2]).unwrap();
        engine.similarity(a, n).unwrap();
        let after_two = engine.stats().telemetry;
        assert!(after_two.rows_driven > after_one.rows_driven);
        assert!(after_two.cancel_polls >= after_one.cancel_polls);
    }

    #[test]
    fn updates_invalidate_cache() {
        let (mut engine, a, n, _) = engine_with_three();
        let s1 = engine.similarity(a, n).unwrap();
        assert_eq!(s1.matched, 3);
        // Move the non-matching 'near' user onto a matching profile.
        engine.upsert_user(n, 3, &[13, 13]).unwrap();
        let s2 = engine.similarity(a, n).unwrap();
        assert_eq!(s2.matched, 4, "update must be reflected");
        // Removing a matching user drops it again.
        engine.remove_user(n, 3).unwrap();
        let s3 = engine.similarity(a, n).unwrap();
        assert_eq!(s3.matched, 3);
        assert_eq!(
            engine.remove_user(n, 77).unwrap_err(),
            EngineError::UnknownUser(77)
        );
    }

    #[test]
    fn upsert_can_insert_new_users() {
        let (mut engine, a, _, _) = engine_with_three();
        engine.upsert_user(a, 999, &[2, 2]).unwrap();
        assert_eq!(engine.community(a).unwrap().len(), 5);
    }

    #[test]
    fn failed_upsert_keeps_prepared_encoding_and_version() {
        let (mut engine, a, n, _) = engine_with_three();
        engine.similarity(a, n).unwrap(); // warms both encodings + cache
        assert!(engine.has_prepared(n));
        let version = engine.community_version(n).unwrap();

        // Wrong-length vector: rejected, and the rejection must not
        // evict the still-valid encoding, bump the version, or drop the
        // cached similarity.
        let err = engine.upsert_user(n, 0, &[1, 2, 3]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Csj(CsjError::VectorLength { .. })
        ));
        assert!(engine.has_prepared(n), "failed upsert evicted the encoding");
        assert_eq!(engine.community_version(n).unwrap(), version);
        let joins = engine.stats().joins_executed;
        engine.similarity(a, n).unwrap();
        assert_eq!(engine.stats().joins_executed, joins, "cache must survive");
    }

    #[test]
    fn failed_remove_keeps_prepared_encoding_and_version() {
        let (mut engine, a, n, _) = engine_with_three();
        engine.similarity(a, n).unwrap();
        let version = engine.community_version(n).unwrap();
        assert_eq!(
            engine.remove_user(n, 424242).unwrap_err(),
            EngineError::UnknownUser(424242)
        );
        assert!(engine.has_prepared(n), "failed remove evicted the encoding");
        assert_eq!(engine.community_version(n).unwrap(), version);
    }

    #[test]
    fn restore_reproduces_handles_and_versions() {
        let (mut engine, _, n, _) = engine_with_three();
        engine.upsert_user(n, 0, &[7, 7]).unwrap();
        engine.remove_user(n, 1).unwrap();
        assert_eq!(engine.community_version(n).unwrap(), 2);

        let mut restored = CsjEngine::new(2, EngineConfig::new(1));
        for h in engine.handles() {
            let c = engine.community(h).unwrap().clone();
            let v = engine.community_version(h).unwrap();
            assert_eq!(restored.restore(c, v).unwrap(), h, "handle order");
        }
        for h in engine.handles() {
            assert_eq!(
                restored.community_version(h).unwrap(),
                engine.community_version(h).unwrap()
            );
            assert_eq!(
                restored.community(h).unwrap().user_ids(),
                engine.community(h).unwrap().user_ids()
            );
        }
    }

    #[test]
    fn registry_shares_rows_with_prepared_encodings() {
        let (mut engine, a, _, _) = engine_with_three();
        let prepared = engine.prepared(a.0);
        // One preparation does not copy the community rows.
        assert!(Arc::ptr_eq(
            &prepared.shared_community(),
            &engine.entries[a.0 as usize].community
        ));
        // A mutation while the query still holds the Arc copies-on-write
        // for the registry; the in-flight query keeps the old snapshot.
        engine.upsert_user(a, 999, &[2, 2]).unwrap();
        assert_eq!(prepared.len(), 4, "in-flight snapshot is unchanged");
        assert_eq!(engine.community(a).unwrap().len(), 5);
    }

    #[test]
    fn screening_partitions_candidates() {
        let (engine, a, n, f) = engine_with_three();
        let outcome = engine.screen(a, &[n, f]).unwrap();
        assert_eq!(outcome.shortlisted.len(), 1);
        assert_eq!(outcome.shortlisted[0].0, n);
        assert_eq!(outcome.rejected, vec![(f, Similarity::new(0, 4))]);
        assert!(outcome.inadmissible.is_empty());
        assert!(outcome.failed.is_empty());
        assert!(outcome.skipped.is_empty());
    }

    #[test]
    fn screening_flags_inadmissible_sizes() {
        let mut engine = CsjEngine::new(2, EngineConfig::new(1));
        let big = community("big", &[[1, 1], [2, 2], [3, 3], [4, 4], [5, 5]]);
        let tiny = community("tiny", &[[1, 1]]);
        let b = engine.register(big).unwrap();
        let t = engine.register(tiny).unwrap();
        let outcome = engine.screen(b, &[t]).unwrap();
        assert_eq!(outcome.inadmissible, vec![t]);
    }

    #[test]
    fn top_k_ranks_by_exact_similarity() {
        let (engine, a, n, _) = engine_with_three();
        let top = engine.top_k_similar(a, 5).unwrap();
        assert_eq!(top.len(), 1, "only 'near' clears the screen threshold");
        assert_eq!(top[0].y, n);
        assert_eq!(top[0].similarity.matched, 3);
    }

    #[test]
    fn pairs_above_sweeps_all_admissible_pairs() {
        let (engine, a, n, f) = engine_with_three();
        let pairs = engine.pairs_above(0.5).unwrap();
        assert_eq!(pairs.len(), 1);
        let p = pairs[0];
        assert!((p.x == a && p.y == n) || (p.x == n && p.y == a));
        let _ = f;
    }

    #[test]
    fn unknown_handle_errors() {
        let (mut engine, a, _, _) = engine_with_three();
        let ghost = CommunityHandle(99);
        assert!(matches!(
            engine.similarity(a, ghost),
            Err(EngineError::UnknownCommunity(99))
        ));
        assert!(engine.screen(ghost, &[a]).is_err());
        assert!(engine.upsert_user(ghost, 1, &[1, 1]).is_err());
    }

    #[test]
    fn zero_join_budget_skips_all_candidates() {
        let (engine, a, n, f) = engine_with_three();
        let budget = Budget::unlimited().with_max_joins(0);
        let partial = engine.screen_with_budget(a, &[n, f], &budget).unwrap();
        assert!(partial.value.shortlisted.is_empty());
        assert!(partial.value.rejected.is_empty());
        assert_eq!(partial.value.skipped.len(), 2);
        let marker = partial.exhausted.expect("budget must be exhausted");
        assert_eq!(marker.reason, ExhaustReason::MaxJoins);
        assert_eq!(marker.pairs_done, 0);
        assert_eq!(marker.pairs_skipped, 2);
    }

    #[test]
    fn max_joins_budget_truncates_refinement() {
        let (engine, a, n, f) = engine_with_three();
        // Two screen joins exhaust the budget before refinement starts.
        let budget = Budget::unlimited().with_max_joins(2);
        let partial = engine
            .screen_and_refine_with_budget(a, &[n, f], &budget)
            .unwrap();
        assert!(partial.value.is_empty(), "no refine join was admitted");
        let marker = partial.exhausted.expect("budget must be exhausted");
        assert_eq!(marker.reason, ExhaustReason::MaxJoins);
        assert_eq!(marker.pairs_done, 2);
        assert_eq!(marker.pairs_skipped, 1, "the shortlisted refine");
    }

    #[test]
    fn zero_deadline_sweep_degrades_and_resumes() {
        let (engine, _a, _n, _f) = engine_with_three();
        let spent = Budget::unlimited().with_deadline(Duration::ZERO);
        let partial = engine.pairs_above_with_budget(0.5, &spent, None).unwrap();
        assert!(partial.value.pairs.is_empty());
        let marker = partial.exhausted.expect("budget must be exhausted");
        assert_eq!(marker.reason, ExhaustReason::Deadline);
        assert_eq!(marker.pairs_done, 0);
        assert_eq!(marker.pairs_skipped, 3, "all of C(3,2) pairs unprocessed");
        let cursor = partial.value.cursor.expect("resume point");

        // Resuming with a fresh unlimited budget completes the sweep and
        // matches the unbudgeted result exactly.
        let resumed = engine
            .pairs_above_with_budget(0.5, &Budget::unlimited(), Some(cursor))
            .unwrap();
        assert!(resumed.is_complete());
        assert!(resumed.value.cursor.is_none());
        assert!(resumed.value.failed.is_empty());
        let full = engine.pairs_above(0.5).unwrap();
        assert_eq!(resumed.value.pairs, full);
    }

    #[test]
    fn pre_cancelled_budget_reports_cancelled() {
        let (engine, a, n, f) = engine_with_three();
        let budget = Budget::unlimited();
        budget.cancel();
        let partial = engine.screen_with_budget(a, &[n, f], &budget).unwrap();
        assert_eq!(partial.value.skipped.len(), 2);
        assert_eq!(
            partial.exhausted.expect("exhausted").reason,
            ExhaustReason::Cancelled
        );
    }

    #[test]
    fn remaining_pairs_counts_the_tail() {
        // n = 4 handles, 6 pairs total.
        let all = CsjEngine::remaining_pairs(4, PairsCursor { i: 0, j: 1 });
        assert_eq!(all, 6);
        assert_eq!(CsjEngine::remaining_pairs(4, PairsCursor { i: 0, j: 3 }), 4);
        assert_eq!(CsjEngine::remaining_pairs(4, PairsCursor { i: 2, j: 3 }), 1);
    }

    #[test]
    fn parallel_map_isolates_panics() {
        let (engine, _, _, _) = engine_with_three();
        let items: Vec<u32> = (0..8).collect();
        let results = engine.parallel_map(&items, |&i| {
            if i == 3 {
                panic!("poisoned item {i}");
            }
            i * 2
        });
        for (i, slot) in results.iter().enumerate() {
            if i == 3 {
                let message = slot.as_ref().unwrap_err();
                assert!(message.contains("poisoned item 3"), "got: {message}");
            } else {
                assert_eq!(*slot.as_ref().unwrap(), i as u32 * 2);
            }
        }
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CsjEngine>();
    }

    #[test]
    fn concurrent_queries_share_the_engine() {
        let (engine, a, n, f) = engine_with_three();
        let expected = engine.similarity(a, n).unwrap();
        let engine = Arc::new(engine);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    assert_eq!(engine.similarity(a, n).unwrap(), expected);
                    let top = engine.top_k_similar(a, 5).unwrap();
                    assert_eq!(top[0].y, n);
                    let _ = engine.pairs_above(0.5).unwrap();
                    let _ = f;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.communities, 3);
        assert!(stats.cache_hits > 0, "cached pair must be reused");
    }

    #[test]
    fn similarity_with_counterpart_matches_and_skips_cache() {
        let (engine, a, n, _) = engine_with_three();
        let exact = engine.similarity_with(a, n, CsjMethod::ExMinMax).unwrap();
        assert_eq!(exact.matched, 3);
        assert_eq!(engine.stats().cached_pairs, 1, "exact path is cached");
        let ap = engine.similarity_with(a, n, CsjMethod::ApMinMax).unwrap();
        assert!(
            ap.matched <= exact.matched,
            "Ap never over-counts: {ap:?} vs {exact:?}"
        );
        assert!(
            2 * ap.matched >= exact.matched,
            "greedy matching is within 2x: {ap:?} vs {exact:?}"
        );
        assert_eq!(
            engine.stats().cached_pairs,
            1,
            "degraded join must not touch the exact cache"
        );
    }

    #[test]
    fn approx_sweep_is_a_sound_lower_bound() {
        let (engine, a, n, _) = engine_with_three();
        let approx = engine
            .pairs_above_approx_with_budget(0.5, &Budget::unlimited(), None)
            .unwrap();
        assert!(approx.is_complete());
        let exact = engine.pairs_above(0.5).unwrap();
        // Every pair the degraded sweep reports truly clears the
        // threshold (no false positives).
        for p in &approx.value.pairs {
            assert!(exact
                .iter()
                .any(|q| (q.x == p.x && q.y == p.y) || (q.x == p.y && q.y == p.x)));
            assert!(p.similarity.ratio() >= 0.5);
        }
        // On this dataset the Ap score finds the one similar pair too.
        assert_eq!(approx.value.pairs.len(), 1);
        let _ = (a, n);
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let p = catch_unwind(|| panic!("plain &str")).unwrap_err();
        assert_eq!(panic_message(p), "plain &str");
        let p = catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(panic_message(p), "formatted 42");
        let p = catch_unwind(|| std::panic::panic_any(7u8)).unwrap_err();
        assert_eq!(panic_message(p), "opaque panic payload");
    }
}
