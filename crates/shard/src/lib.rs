//! # csj-shard — supervised shard executor
//!
//! Runs one closure per shard on a small work-stealing worker pool and
//! supervises every attempt from the calling thread. The robustness
//! contract (DESIGN.md §17):
//!
//! * every attempt runs inside its own `catch_unwind` boundary — a
//!   panicking shard resolves to a typed [`ShardOutcome`], it never
//!   takes down siblings or the process;
//! * every attempt gets its own [`CancelToken`] slice, so the
//!   supervisor can time out one shard ([`ShardConfig::shard_deadline`])
//!   or cancel the losers of a hedge race without touching the rest;
//! * straggler shards past a latency quantile of their completed peers
//!   (or whose first attempt died) get **one** hedged re-dispatch:
//!   first result wins, the loser's token is tripped;
//! * the executor never blocks forever on a cooperative workload: shard
//!   closures are expected to poll `ctx.cancel` (every engine closure
//!   does, via the budget machinery) and return a partial value.
//!
//! The executor knows nothing about joins or communities: the engine
//! plans the skew-aware layout (`csj_core::plan_shards`), hands over a
//! closure indexed by shard id, and classifies the returned
//! [`ShardReport`]s into a `csj_core::Coverage` record.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use csj_core::CancelToken;

#[cfg(feature = "fault-injection")]
pub mod fault;
#[cfg(feature = "fault-injection")]
pub use fault::ShardFaultPlan;

/// How one shard resolved. `Hedged` and `TimedOut` can still carry a
/// value (the hedge winner's, or the partial result a timed-out shard
/// returned when its token was tripped); `Panicked` and `Cancelled`
/// never do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// First attempt returned a value within its slice.
    Completed,
    /// The shard's deadline slice expired; any value it returned after
    /// its token was tripped is partial.
    TimedOut,
    /// Every attempt panicked or its worker died; no value.
    Panicked,
    /// The hedged re-dispatch won the race (first attempt was slow or
    /// dead); the value is the hedge's.
    Hedged,
    /// No attempt ever started — the query was cancelled first.
    Cancelled,
}

impl ShardOutcome {
    /// Stable metric/span label.
    pub fn label(&self) -> &'static str {
        match self {
            ShardOutcome::Completed => "completed",
            ShardOutcome::TimedOut => "timed_out",
            ShardOutcome::Panicked => "panicked",
            ShardOutcome::Hedged => "hedged",
            ShardOutcome::Cancelled => "cancelled",
        }
    }
}

/// What the executor hands back for one shard.
#[derive(Debug)]
pub struct ShardReport<R> {
    /// Shard id (index into the planned layout).
    pub shard: usize,
    pub outcome: ShardOutcome,
    /// The winning attempt's value, if any attempt produced one.
    pub value: Option<R>,
    /// Payload of the last panicking attempt (or the injector's kill
    /// note), for spans and error reporting.
    pub panic_message: Option<String>,
    /// Attempts dispatched for this shard (1, or 2 when hedged).
    pub attempts: u32,
    /// Winning attempt's run time, or the longest failed attempt's.
    pub elapsed: Duration,
}

impl<R> ShardReport<R> {
    /// Whether this shard contributed a value to the merge.
    pub fn succeeded(&self) -> bool {
        self.value.is_some()
    }
}

/// Per-attempt context passed to the shard closure. The closure MUST
/// poll `cancel` at work-unit granularity and return early (with a
/// partial value) once tripped — that is what makes deadline slices,
/// loser cancellation, and global cancellation effective.
#[derive(Debug, Clone)]
pub struct ShardCtx {
    /// This attempt's cancellation slice. Tripped by the supervisor on
    /// shard deadline, hedge-race loss, or global cancellation.
    pub cancel: CancelToken,
    /// Shard id the attempt is computing.
    pub shard: usize,
    /// 0 for the primary attempt, 1 for the hedge.
    pub attempt: u32,
}

/// Knobs for the sharded execution layer. Carried on `EngineConfig`;
/// the pool size itself is the engine's `threads` knob (shards share
/// the one parallelism budget — see the oversubscription note there).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardConfig {
    /// Route multi-pair queries through the sharded path.
    pub enabled: bool,
    /// Shard count; 0 means auto (the engine uses its thread count).
    pub shards: usize,
    /// Per-shard deadline slice. A shard past it has its attempt tokens
    /// tripped and resolves `TimedOut` (its partial value still merges).
    pub shard_deadline: Option<Duration>,
    /// Never hedge a shard before it has run this long, regardless of
    /// how fast its peers were.
    pub hedge_floor: Duration,
    /// Latency quantile of completed attempts that defines a straggler.
    pub hedge_quantile: f64,
    /// Completed attempts required before the quantile is trusted.
    pub hedge_min_samples: usize,
    /// A shard is a straggler once it has run `factor ×` the quantile.
    pub hedge_factor: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            enabled: false,
            shards: 0,
            shard_deadline: None,
            hedge_floor: Duration::from_millis(10),
            hedge_quantile: 0.95,
            hedge_min_samples: 3,
            hedge_factor: 3.0,
        }
    }
}

/// How one dispatched attempt ended.
#[derive(Debug)]
enum AttemptEnd {
    /// Returned a value (possibly partial, if its token was tripped).
    Ok(Duration),
    /// Panicked inside the `catch_unwind` boundary.
    Panicked(String, Duration),
    /// Worker died before running the closure (fault injector's kill).
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    Killed(String),
    /// Popped but never run: shard already resolved, or global cancel.
    Skipped,
}

#[derive(Debug)]
struct Attempt {
    token: CancelToken,
    started: Option<Instant>,
    done: Option<AttemptEnd>,
}

impl Attempt {
    fn new() -> Self {
        Attempt {
            token: CancelToken::new(),
            started: None,
            done: None,
        }
    }
}

struct ShardState<R> {
    attempts: Vec<Attempt>,
    /// Winning `(attempt, value)` — first result wins.
    value: Option<(u32, R)>,
    winner_elapsed: Option<Duration>,
    timed_out: bool,
    hedged: bool,
    first_start: Option<Instant>,
    resolved: Option<ShardOutcome>,
}

struct Pool<R> {
    /// Pending `(shard, attempt)` tasks; the condvar is paired with
    /// this mutex (shutdown is also flipped under it, so workers can't
    /// miss a wakeup between checking the flag and parking).
    queue: Mutex<VecDeque<(usize, u32)>>,
    ready: Condvar,
    shutdown: std::sync::atomic::AtomicBool,
    states: Mutex<Vec<ShardState<R>>>,
}

/// The supervised executor. Construct one per query from the engine's
/// config; `run` blocks the calling thread (which acts as supervisor)
/// until every shard has resolved.
pub struct ShardExecutor {
    cfg: ShardConfig,
    threads: usize,
    #[cfg(feature = "fault-injection")]
    faults: Option<std::sync::Arc<ShardFaultPlan>>,
}

impl ShardExecutor {
    pub fn new(cfg: ShardConfig, threads: usize) -> Self {
        ShardExecutor {
            cfg,
            threads: threads.max(1),
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Attach a fault plan for chaos testing; kills/stalls/panics apply
    /// to the next matching attempts.
    #[cfg(feature = "fault-injection")]
    pub fn with_faults(mut self, plan: Option<std::sync::Arc<ShardFaultPlan>>) -> Self {
        self.faults = plan;
        self
    }

    /// Run `f` once per shard in `0..shard_count` under supervision.
    /// Returns one report per shard, indexed by shard id. `global` is
    /// the query-wide cancellation token (the budget's): once tripped,
    /// running attempts are asked to wind down and unstarted shards
    /// resolve `Cancelled`.
    pub fn run<R, F>(&self, shard_count: usize, global: &CancelToken, f: F) -> Vec<ShardReport<R>>
    where
        R: Send,
        F: Fn(&ShardCtx) -> R + Sync,
    {
        if shard_count == 0 {
            return Vec::new();
        }
        let pool = Pool {
            queue: Mutex::new((0..shard_count).map(|s| (s, 0u32)).collect()),
            ready: Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            states: Mutex::new(
                (0..shard_count)
                    .map(|_| ShardState {
                        attempts: vec![Attempt::new()],
                        value: None,
                        winner_elapsed: None,
                        timed_out: false,
                        hedged: false,
                        first_start: None,
                        resolved: None,
                    })
                    .collect(),
            ),
        };
        let workers = self.threads.min(shard_count).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&pool, global, &f));
            }
            self.supervise(&pool, global, shard_count);
            {
                let _q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
                pool.shutdown
                    .store(true, std::sync::atomic::Ordering::SeqCst);
            }
            pool.ready.notify_all();
        });

        let states = pool.states.into_inner().unwrap_or_else(|e| e.into_inner());
        states
            .into_iter()
            .enumerate()
            .map(|(shard, st)| {
                let panic_message = st.attempts.iter().rev().find_map(|a| match &a.done {
                    Some(AttemptEnd::Panicked(msg, _)) => Some(msg.clone()),
                    Some(AttemptEnd::Killed(msg)) => Some(msg.clone()),
                    _ => None,
                });
                let elapsed = st.winner_elapsed.unwrap_or_else(|| {
                    st.attempts
                        .iter()
                        .filter_map(|a| match &a.done {
                            Some(AttemptEnd::Ok(d)) | Some(AttemptEnd::Panicked(_, d)) => Some(*d),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(Duration::ZERO)
                });
                ShardReport {
                    shard,
                    outcome: st.resolved.unwrap_or(ShardOutcome::Cancelled),
                    value: st.value.map(|(_, r)| r),
                    panic_message,
                    attempts: st.attempts.len() as u32,
                    elapsed,
                }
            })
            .collect()
    }

    fn worker_loop<R, F>(&self, pool: &Pool<R>, global: &CancelToken, f: &F)
    where
        R: Send,
        F: Fn(&ShardCtx) -> R + Sync,
    {
        loop {
            let (shard, attempt) = {
                let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if pool.shutdown.load(std::sync::atomic::Ordering::SeqCst) {
                        return;
                    }
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = pool.ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };

            // Claim the attempt; skip it if the race is already over or
            // the query was cancelled before this shard ever started.
            let token = {
                let mut states = pool.states.lock().unwrap_or_else(|e| e.into_inner());
                let st = &mut states[shard];
                let idx = attempt as usize;
                if st.value.is_some() || st.resolved.is_some() || global.is_cancelled() {
                    st.attempts[idx].done = Some(AttemptEnd::Skipped);
                    continue;
                }
                let now = Instant::now();
                st.attempts[idx].started = Some(now);
                if st.first_start.is_none() {
                    st.first_start = Some(now);
                }
                st.attempts[idx].token.clone()
            };

            #[cfg(feature = "fault-injection")]
            if let Some(plan) = &self.faults {
                if plan.take_kill(shard) {
                    // The worker "dies" before the closure runs: the
                    // attempt vanishes without a value, exactly like a
                    // crashed remote worker.
                    let mut states = pool.states.lock().unwrap_or_else(|e| e.into_inner());
                    states[shard].attempts[attempt as usize].done = Some(AttemptEnd::Killed(
                        format!("shard {shard} worker killed by fault injector"),
                    ));
                    continue;
                }
                if let Some(stall) = plan.take_stall(shard) {
                    // Chunked so a tripped token (hedge won, deadline)
                    // wakes the stalled attempt early.
                    let stall_start = Instant::now();
                    while stall_start.elapsed() < stall && !token.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }

            #[cfg(feature = "fault-injection")]
            let inject_panic = self
                .faults
                .as_ref()
                .map_or(false, |plan| plan.take_panic(shard));
            #[cfg(not(feature = "fault-injection"))]
            let inject_panic = false;

            let ctx = ShardCtx {
                cancel: token,
                shard,
                attempt,
            };
            let t0 = Instant::now();
            let out = catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected shard panic (shard {shard}, attempt {attempt})");
                }
                f(&ctx)
            }));
            let dur = t0.elapsed();

            let mut states = pool.states.lock().unwrap_or_else(|e| e.into_inner());
            let st = &mut states[shard];
            let idx = attempt as usize;
            match out {
                Ok(value) => {
                    st.attempts[idx].done = Some(AttemptEnd::Ok(dur));
                    if st.value.is_none() {
                        st.value = Some((attempt, value));
                        st.winner_elapsed = Some(dur);
                        // First result wins: cancel the losers.
                        for (i, a) in st.attempts.iter().enumerate() {
                            if i != idx {
                                a.token.cancel();
                            }
                        }
                    }
                }
                Err(payload) => {
                    st.attempts[idx].done = Some(AttemptEnd::Panicked(panic_message(payload), dur));
                }
            }
        }
    }

    /// Supervisor loop on the calling thread: marks deadline slices,
    /// dispatches hedges (one per shard — immediately when the primary
    /// attempt died, or past the straggler threshold), propagates
    /// global cancellation, and resolves each shard exactly once.
    fn supervise<R: Send>(&self, pool: &Pool<R>, global: &CancelToken, shard_count: usize) {
        loop {
            let mut hedges: Vec<usize> = Vec::new();
            let mut resolved_all = true;
            {
                let mut states = pool.states.lock().unwrap_or_else(|e| e.into_inner());
                let mut samples: Vec<Duration> = states
                    .iter()
                    .flat_map(|st| st.attempts.iter())
                    .filter_map(|a| match &a.done {
                        Some(AttemptEnd::Ok(d)) => Some(*d),
                        _ => None,
                    })
                    .collect();
                let threshold = self.straggler_threshold(&mut samples);
                let now = Instant::now();

                for shard in 0..states.len() {
                    let st = &mut states[shard];
                    if st.resolved.is_some() {
                        continue;
                    }
                    resolved_all = false;

                    if global.is_cancelled() {
                        for a in &st.attempts {
                            a.token.cancel();
                        }
                    }
                    if let (Some(deadline), Some(first)) = (self.cfg.shard_deadline, st.first_start)
                    {
                        if !st.timed_out && now.duration_since(first) > deadline {
                            st.timed_out = true;
                            for a in &st.attempts {
                                a.token.cancel();
                            }
                        }
                    }

                    if let Some((winner, _)) = &st.value {
                        st.resolved = Some(if *winner > 0 {
                            ShardOutcome::Hedged
                        } else if st.timed_out {
                            ShardOutcome::TimedOut
                        } else {
                            ShardOutcome::Completed
                        });
                        continue;
                    }

                    let pending = st.attempts.iter().any(|a| a.done.is_none());
                    let may_hedge = !st.hedged && !st.timed_out && !global.is_cancelled();
                    if !pending {
                        // Every dispatched attempt ended without a
                        // value (panic, kill, or skip).
                        if may_hedge
                            && st
                                .attempts
                                .iter()
                                .any(|a| !matches!(a.done, Some(AttemptEnd::Skipped)))
                        {
                            st.hedged = true;
                            st.attempts.push(Attempt::new());
                            hedges.push(shard);
                        } else if st.attempts.iter().all(|a| a.started.is_none()) {
                            st.resolved = Some(ShardOutcome::Cancelled);
                        } else if st.timed_out {
                            st.resolved = Some(ShardOutcome::TimedOut);
                        } else {
                            st.resolved = Some(ShardOutcome::Panicked);
                        }
                    } else if may_hedge && st.attempts.len() == 1 {
                        if let (Some(limit), Some(first)) = (threshold, st.first_start) {
                            if now.duration_since(first) > limit {
                                st.hedged = true;
                                st.attempts.push(Attempt::new());
                                hedges.push(shard);
                            }
                        }
                    }
                }
            }

            if !hedges.is_empty() {
                let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
                for shard in &hedges {
                    q.push_back((*shard, 1));
                }
                drop(q);
                pool.ready.notify_all();
            }

            if resolved_all {
                return;
            }
            debug_assert!(shard_count > 0);
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Straggler threshold from completed-attempt latencies: `factor ×`
    /// the configured quantile, floored at `hedge_floor`; `None` until
    /// enough samples exist.
    fn straggler_threshold(&self, samples: &mut [Duration]) -> Option<Duration> {
        if samples.len() < self.cfg.hedge_min_samples.max(1) {
            return None;
        }
        samples.sort_unstable();
        let q = self.cfg.hedge_quantile.clamp(0.0, 1.0);
        let idx = (((samples.len() - 1) as f64) * q).ceil() as usize;
        let quantile = samples[idx.min(samples.len() - 1)];
        let scaled = quantile.mul_f64(self.cfg.hedge_factor.max(1.0));
        Some(scaled.max(self.cfg.hedge_floor))
    }
}

/// Render a panic payload like the engine does: `&str` and `String`
/// payloads verbatim, anything else opaque.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(cfg: ShardConfig, threads: usize) -> ShardExecutor {
        ShardExecutor::new(cfg, threads)
    }

    #[test]
    fn all_shards_complete() {
        let ex = exec(ShardConfig::default(), 3);
        let global = CancelToken::new();
        let reports = ex.run(5, &global, |ctx| ctx.shard * 10);
        assert_eq!(reports.len(), 5);
        for (s, r) in reports.iter().enumerate() {
            assert_eq!(r.shard, s);
            assert_eq!(r.outcome, ShardOutcome::Completed);
            assert_eq!(r.value, Some(s * 10));
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn empty_dispatch_is_empty() {
        let ex = exec(ShardConfig::default(), 2);
        let reports = ex.run(0, &CancelToken::new(), |_ctx| 0u32);
        assert!(reports.is_empty());
    }

    #[test]
    fn panic_is_contained_and_hedge_rescues() {
        // A closure that panics only on its first attempt: the failure
        // hedge re-runs it and wins.
        let ex = exec(ShardConfig::default(), 2);
        let reports = ex.run(3, &CancelToken::new(), |ctx| {
            if ctx.shard == 1 && ctx.attempt == 0 {
                panic!("poisoned shard 1");
            }
            ctx.shard
        });
        assert_eq!(reports[1].outcome, ShardOutcome::Hedged);
        assert_eq!(reports[1].value, Some(1));
        assert_eq!(reports[1].attempts, 2);
        assert_eq!(reports[0].outcome, ShardOutcome::Completed);
        assert_eq!(reports[2].outcome, ShardOutcome::Completed);
    }

    #[test]
    fn double_panic_resolves_panicked_with_payload() {
        let ex = exec(ShardConfig::default(), 2);
        let reports = ex.run(2, &CancelToken::new(), |ctx| {
            if ctx.shard == 0 {
                panic!("always poisoned (attempt {})", ctx.attempt);
            }
            7u32
        });
        assert_eq!(reports[0].outcome, ShardOutcome::Panicked);
        assert!(reports[0].value.is_none());
        assert_eq!(reports[0].attempts, 2);
        let msg = reports[0].panic_message.as_deref().unwrap();
        assert!(msg.contains("always poisoned"), "got: {msg}");
        assert_eq!(reports[1].outcome, ShardOutcome::Completed);
    }

    #[test]
    fn global_cancel_before_start_resolves_cancelled() {
        let global = CancelToken::new();
        global.cancel();
        let ex = exec(ShardConfig::default(), 2);
        let reports = ex.run(4, &global, |ctx| ctx.shard);
        for r in &reports {
            assert_eq!(r.outcome, ShardOutcome::Cancelled, "shard {}", r.shard);
            assert!(r.value.is_none());
        }
    }

    #[test]
    fn deadline_slice_times_out_cooperative_shard() {
        let cfg = ShardConfig {
            shard_deadline: Some(Duration::from_millis(5)),
            ..ShardConfig::default()
        };
        let ex = exec(cfg, 2);
        let reports = ex.run(2, &CancelToken::new(), |ctx| {
            if ctx.shard == 0 {
                // Cooperative straggler: spins until its slice is
                // tripped, then returns a partial marker.
                while !ctx.cancel.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return usize::MAX;
            }
            ctx.shard
        });
        assert_eq!(reports[0].outcome, ShardOutcome::TimedOut);
        assert_eq!(reports[0].value, Some(usize::MAX), "partial value kept");
        assert_eq!(reports[1].outcome, ShardOutcome::Completed);
    }

    #[test]
    fn straggler_gets_hedged() {
        let cfg = ShardConfig {
            hedge_floor: Duration::from_millis(2),
            hedge_min_samples: 2,
            hedge_factor: 1.0,
            ..ShardConfig::default()
        };
        let ex = exec(cfg, 4);
        let reports = ex.run(4, &CancelToken::new(), |ctx| {
            if ctx.shard == 0 && ctx.attempt == 0 {
                // First attempt dawdles until cancelled (hedge wins) or
                // far past any hedging threshold; the cap is generous so
                // a heavily loaded box cannot outlast it and let the
                // primary complete un-hedged.
                let start = Instant::now();
                while !ctx.cancel.is_cancelled() && start.elapsed() < Duration::from_secs(10) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return 999;
            }
            ctx.shard
        });
        assert_eq!(reports[0].outcome, ShardOutcome::Hedged);
        assert_eq!(reports[0].value, Some(0), "hedge attempt's value wins");
        assert_eq!(reports[0].attempts, 2);
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(ShardOutcome::Completed.label(), "completed");
        assert_eq!(ShardOutcome::TimedOut.label(), "timed_out");
        assert_eq!(ShardOutcome::Panicked.label(), "panicked");
        assert_eq!(ShardOutcome::Hedged.label(), "hedged");
        assert_eq!(ShardOutcome::Cancelled.label(), "cancelled");
    }
}
