//! Shard-boundary fault injector (cfg-gated, chaos testing only).
//!
//! Mirrors the engine's per-join `FaultPlan`, but targets the *shard*
//! boundary: a kill makes the next attempt on a shard vanish before its
//! closure runs (a crashed worker), a stall delays the next attempt
//! (a straggler, to exercise hedging), a panic blows up inside the
//! attempt's `catch_unwind` boundary. Counts are consumed per attempt,
//! so `kill(s, 1)` fails only the primary attempt and lets the hedge
//! rescue the shard, while `kill(s, u32::MAX)` fails the shard outright.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// A recipe of shard-level faults. Build with the fluent methods, then
/// hand to the engine (`CsjEngine::inject_shard_faults`) or directly to
/// `ShardExecutor::with_faults`.
#[derive(Debug, Default)]
pub struct ShardFaultPlan {
    kills: Mutex<HashMap<usize, u32>>,
    stalls: Mutex<HashMap<usize, (Duration, u32)>>,
    panics: Mutex<HashMap<usize, u32>>,
}

impl ShardFaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// The next `times` attempts on `shard` die before running.
    pub fn kill(self, shard: usize, times: u32) -> Self {
        self.kills
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(shard, times);
        self
    }

    /// The next `times` attempts on `shard` stall for `delay` before
    /// running (they still poll their cancel token while stalled).
    pub fn stall(self, shard: usize, delay: Duration, times: u32) -> Self {
        self.stalls
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(shard, (delay, times));
        self
    }

    /// The next `times` attempts on `shard` panic inside the shard's
    /// `catch_unwind` boundary.
    pub fn panic_on(self, shard: usize, times: u32) -> Self {
        self.panics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(shard, times);
        self
    }

    /// Consume one kill charge for `shard`, if any remains.
    pub(crate) fn take_kill(&self, shard: usize) -> bool {
        take_count(&self.kills, shard)
    }

    /// Consume one stall charge for `shard`, if any remains.
    pub(crate) fn take_stall(&self, shard: usize) -> Option<Duration> {
        let mut stalls = self.stalls.lock().unwrap_or_else(|e| e.into_inner());
        match stalls.get_mut(&shard) {
            Some((delay, times)) if *times > 0 => {
                *times -= 1;
                Some(*delay)
            }
            _ => None,
        }
    }

    /// Consume one panic charge for `shard`, if any remains.
    pub(crate) fn take_panic(&self, shard: usize) -> bool {
        take_count(&self.panics, shard)
    }
}

fn take_count(map: &Mutex<HashMap<usize, u32>>, shard: usize) -> bool {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    match map.get_mut(&shard) {
        Some(times) if *times > 0 => {
            *times -= 1;
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShardConfig, ShardExecutor, ShardOutcome};
    use csj_core::CancelToken;
    use std::sync::Arc;

    #[test]
    fn charges_are_consumed_per_attempt() {
        let plan = ShardFaultPlan::new()
            .kill(0, 2)
            .stall(1, Duration::from_millis(1), 1)
            .panic_on(2, 1);
        assert!(plan.take_kill(0));
        assert!(plan.take_kill(0));
        assert!(!plan.take_kill(0));
        assert!(!plan.take_kill(5));
        assert_eq!(plan.take_stall(1), Some(Duration::from_millis(1)));
        assert_eq!(plan.take_stall(1), None);
        assert!(plan.take_panic(2));
        assert!(!plan.take_panic(2));
    }

    #[test]
    fn killed_shard_is_rescued_by_hedge() {
        let plan = Arc::new(ShardFaultPlan::new().kill(1, 1));
        let ex = ShardExecutor::new(ShardConfig::default(), 2).with_faults(Some(plan));
        let reports = ex.run(3, &CancelToken::new(), |ctx| ctx.shard * 2);
        assert_eq!(reports[1].outcome, ShardOutcome::Hedged);
        assert_eq!(reports[1].value, Some(2));
        assert_eq!(reports[1].attempts, 2);
    }

    #[test]
    fn persistent_kill_fails_the_shard_only() {
        let plan = Arc::new(ShardFaultPlan::new().kill(0, u32::MAX));
        let ex = ShardExecutor::new(ShardConfig::default(), 2).with_faults(Some(plan));
        let reports = ex.run(2, &CancelToken::new(), |ctx| ctx.shard);
        assert_eq!(reports[0].outcome, ShardOutcome::Panicked);
        assert!(reports[0].value.is_none());
        let msg = reports[0].panic_message.as_deref().unwrap();
        assert!(msg.contains("killed by fault injector"), "got: {msg}");
        assert_eq!(reports[1].outcome, ShardOutcome::Completed);
        assert_eq!(reports[1].value, Some(1));
    }

    #[test]
    fn injected_panic_is_contained() {
        let plan = Arc::new(ShardFaultPlan::new().panic_on(0, u32::MAX));
        let ex = ShardExecutor::new(ShardConfig::default(), 2).with_faults(Some(plan));
        let reports = ex.run(2, &CancelToken::new(), |ctx| ctx.shard);
        assert_eq!(reports[0].outcome, ShardOutcome::Panicked);
        let msg = reports[0].panic_message.as_deref().unwrap();
        assert!(msg.contains("injected shard panic"), "got: {msg}");
    }

    #[test]
    fn stalled_shard_gets_hedged_and_recovers() {
        // A long stall (the loser's token trips it early, so the test
        // stays fast): on a loaded box the healthy-shard latency
        // quantile must still land far below it, or the stalled primary
        // would finish before the hedge fires and flake this test.
        let plan = Arc::new(ShardFaultPlan::new().stall(0, Duration::from_secs(5), 1));
        let cfg = ShardConfig {
            hedge_floor: Duration::from_millis(2),
            hedge_min_samples: 2,
            hedge_factor: 1.0,
            ..ShardConfig::default()
        };
        let ex = ShardExecutor::new(cfg, 4).with_faults(Some(plan));
        let reports = ex.run(4, &CancelToken::new(), |ctx| ctx.shard + 100);
        assert_eq!(reports[0].outcome, ShardOutcome::Hedged, "{reports:?}");
        assert_eq!(reports[0].value, Some(100));
    }
}
