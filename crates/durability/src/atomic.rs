//! Crash-safe whole-file replacement: temp file + fsync + atomic rename
//! (+ parent-directory fsync), so a reader never observes a
//! half-written file — it sees the old contents or the new, nothing in
//! between.
//!
//! Used by the snapshot store and by every CLI/bench artifact writer
//! (`BENCH_*.json`, `--metrics-out`, reports): a crash mid-report must
//! not shred the previous good copy with a truncated one.

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Atomically replace `path` with `bytes`.
///
/// The temp file lives in `path`'s own directory (renames are only
/// atomic within a filesystem) and carries the pid so concurrent
/// writers of different files never collide. The parent-directory
/// fsync pins the rename itself; on filesystems that refuse directory
/// fsync the result is intentionally ignored — the data fsync already
/// happened, and the rename is still atomic.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic: path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };

    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(d) = dir {
            let _ = File::open(d).and_then(|h| h.sync_all());
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("csj-atomic-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("replace");
        let path = dir.join("out.json");
        write_atomic(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        write_atomic(&path, b"v2 is longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v2 is longer");
        // No temp droppings left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_cleans_up_temp() {
        let dir = scratch("fail");
        // Target "directory/" cannot be created as a file: rename fails.
        let path = dir.join("sub");
        std::fs::create_dir(&path).unwrap();
        assert!(write_atomic(&path, b"x").is_err());
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "temp file removed on failure"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
