//! [`DurableEngine`]: the log-before-apply mutation wrapper around
//! [`CsjEngine`].
//!
//! Opening a directory *is* recovery: load the latest valid snapshot,
//! replay the WAL tail, repair any torn tail in place, and continue
//! appending where the log left off. Every mutation is pre-validated
//! (so a record that reaches the log always applies), appended, fsynced
//! per policy, and only then applied in memory — the returned
//! [`DurableAck`] says whether the record is already on stable storage.
//!
//! Queries go through [`DurableEngine::engine`] untouched: reads take
//! `&self` and never block on the log.

use std::path::{Path, PathBuf};

use csj_core::Community;
use csj_engine::{CommunityHandle, CsjEngine, EngineConfig, EngineError};
use csj_obs::MetricsSnapshot;

use crate::error::DurabilityError;
use crate::obs::DurabilityObs;
use crate::record::WalOp;
use crate::recover::{recover_dir, RecoveryReport, WAL_FILE};
use crate::snapshot::{prune_snapshots, SnapshotEntry, SnapshotImage};
use crate::wal::{FsyncPolicy, Wal};

/// Durability tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// When mutation acks become durable (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Snapshot files kept after a new one lands (≥ 1). Two means a
    /// single damaged file never strands the registry.
    pub keep_snapshots: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            keep_snapshots: 2,
        }
    }
}

/// Acknowledgement of one durable mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableAck {
    /// The WAL sequence number the mutation got.
    pub seq: u64,
    /// Whether the record is on stable storage. Always `true` under
    /// `FsyncPolicy::Always`; under `Interval(n)` it is `true` only for
    /// the append that flushed the batch.
    pub synced: bool,
}

/// What a snapshot call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotOutcome {
    /// Sequence number the snapshot covers (its `SnapshotMark`).
    pub seq: u64,
    /// The snapshot file.
    pub path: PathBuf,
    /// Older snapshot files pruned.
    pub pruned: usize,
}

/// A crash-consistent registry: engine + WAL + snapshot store.
pub struct DurableEngine {
    dir: PathBuf,
    engine: CsjEngine,
    wal: Wal,
    config: DurabilityConfig,
    obs: DurabilityObs,
    report: RecoveryReport,
    #[cfg(feature = "fault-injection")]
    faults: Option<crate::fault::FsFaultPlan>,
}

impl DurableEngine {
    /// Open (creating if needed) the durable registry at `dir`:
    /// recovery, then torn-tail repair, then an append handle placed at
    /// `last_seq + 1`.
    ///
    /// `default_d` is the engine dimensionality when the directory
    /// holds no state yet; recovered state overrides it.
    pub fn open(
        dir: &Path,
        default_d: usize,
        engine_config: EngineConfig,
        config: DurabilityConfig,
    ) -> Result<Self, DurabilityError> {
        std::fs::create_dir_all(dir)?;
        let (engine, report) = recover_dir(dir, default_d, engine_config)?;
        let wal_path = dir.join(WAL_FILE);
        // Repair the torn tail so appends continue from a clean frame
        // boundary. The discarded bytes were never acked (or their
        // fsync never completed), so cutting them is the correct —
        // and only — consistent choice.
        Wal::repair_tail(&wal_path, report.wal_valid_bytes)?;
        let wal = Wal::open(&wal_path, config.fsync, report.last_seq + 1)?;
        let obs = DurabilityObs::new();
        obs.on_recovery(report.records_replayed, report.bytes_discarded);
        Ok(Self {
            dir: dir.to_path_buf(),
            engine,
            wal,
            config,
            obs,
            report,
            #[cfg(feature = "fault-injection")]
            faults: None,
        })
    }

    /// The recovery report from opening.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The directory this registry persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The wrapped engine, for queries (`&self` methods only — all
    /// mutations must go through the durable methods).
    pub fn engine(&self) -> &CsjEngine {
        &self.engine
    }

    /// Sync any batched appends, then surrender the engine (e.g. to
    /// hand it to a query service once ingest is done).
    pub fn into_engine(mut self) -> Result<CsjEngine, DurabilityError> {
        self.sync()?;
        Ok(self.engine)
    }

    /// Install a filesystem fault plan (torn WAL writes, snapshot
    /// rename failures). Chaos harness only.
    #[cfg(feature = "fault-injection")]
    pub fn inject_fs_faults(&mut self, plan: crate::fault::FsFaultPlan) {
        self.wal.inject_faults(plan.clone());
        self.faults = Some(plan);
    }

    /// Durably register a community. Log-before-apply: validation,
    /// append (+fsync per policy), then the in-memory registration.
    pub fn register(
        &mut self,
        community: Community,
    ) -> Result<(CommunityHandle, DurableAck), DurabilityError> {
        // Pre-validate so the logged record is guaranteed to apply:
        // replay must never meet a record the engine rejects.
        if community.d() != self.engine.d() {
            return Err(EngineError::DimensionMismatch {
                engine_d: self.engine.d(),
                got: community.d(),
            }
            .into());
        }
        if self.engine.find(community.name()).is_some() {
            return Err(EngineError::DuplicateName(community.name().to_string()).into());
        }
        if community.name().len() > u16::MAX as usize {
            return Err(DurabilityError::Corrupt {
                context: "register".into(),
                reason: "community name too long for the WAL wire form".into(),
            });
        }
        let ack = self.append(WalOp::Register {
            community: community.clone(),
        })?;
        let handle =
            self.engine
                .register(community)
                .map_err(|source| DurabilityError::ReplayMismatch {
                    seq: ack.seq,
                    source,
                })?;
        Ok((handle, ack))
    }

    /// Durably insert or overwrite a user's profile vector.
    pub fn upsert_user(
        &mut self,
        handle: CommunityHandle,
        user: u64,
        vector: &[u32],
    ) -> Result<DurableAck, DurabilityError> {
        let community = self.engine.community(handle)?;
        if vector.len() != community.d() {
            return Err(EngineError::Csj(csj_core::CsjError::VectorLength {
                expected: community.d(),
                got: vector.len(),
            })
            .into());
        }
        let ack = self.append(WalOp::UpsertUser {
            handle: handle.0,
            user,
            vector: vector.to_vec(),
        })?;
        self.engine
            .upsert_user(handle, user, vector)
            .map_err(|source| DurabilityError::ReplayMismatch {
                seq: ack.seq,
                source,
            })?;
        Ok(ack)
    }

    /// Durably remove a user.
    pub fn remove_user(
        &mut self,
        handle: CommunityHandle,
        user: u64,
    ) -> Result<DurableAck, DurabilityError> {
        if self.engine.community(handle)?.find_user(user).is_none() {
            return Err(EngineError::UnknownUser(user).into());
        }
        let ack = self.append(WalOp::RemoveUser {
            handle: handle.0,
            user,
        })?;
        self.engine.remove_user(handle, user).map_err(|source| {
            DurabilityError::ReplayMismatch {
                seq: ack.seq,
                source,
            }
        })?;
        Ok(ack)
    }

    fn append(&mut self, op: WalOp) -> Result<DurableAck, DurabilityError> {
        let out = self.wal.append(op)?;
        self.obs.on_append(out.bytes, out.fsync_latency);
        Ok(DurableAck {
            seq: out.seq,
            synced: out.synced,
        })
    }

    /// Force-fsync any batched appends (makes every prior ack durable).
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        let latency = self.wal.sync()?;
        self.obs.on_sync(latency);
        Ok(())
    }

    /// Write a full-registry snapshot, then truncate the WAL and prune
    /// old snapshots.
    ///
    /// Ordering is what makes every crash point safe:
    /// 1. append `SnapshotMark` (fsynced) — the snapshot's seq;
    /// 2. write `snapshot-<seq>.csjs` atomically;
    /// 3. truncate the WAL;
    /// 4. prune old snapshots.
    ///
    /// Crash after 1: recovery replays the full WAL (mark is a no-op).
    /// Crash after 2: recovery loads the new snapshot, skips the WAL's
    /// pre-snapshot records. Crash after 3 or 4: fully consistent.
    pub fn snapshot(&mut self) -> Result<SnapshotOutcome, DurabilityError> {
        let mark = self.append(WalOp::SnapshotMark)?;
        self.wal.sync().map(|l| self.obs.on_sync(l))?;
        let image = SnapshotImage {
            last_seq: mark.seq,
            entries: self
                .engine
                .handles()
                .map(|h| {
                    Ok(SnapshotEntry {
                        community: self.engine.community(h)?.clone(),
                        version: self.engine.community_version(h)?,
                    })
                })
                .collect::<Result<Vec<_>, EngineError>>()?,
        };
        #[cfg(feature = "fault-injection")]
        let path = {
            let fail = self
                .faults
                .as_ref()
                .map(crate::fault::FsFaultPlan::rename_should_fail)
                .unwrap_or(false);
            crate::snapshot::write_snapshot_faulty(&self.dir, &image, fail)?
        };
        #[cfg(not(feature = "fault-injection"))]
        let path = crate::snapshot::write_snapshot(&self.dir, &image)?;
        self.obs.on_snapshot();
        self.wal.reset_after_snapshot()?;
        let pruned = prune_snapshots(&self.dir, self.config.keep_snapshots.max(1))?;
        Ok(SnapshotOutcome {
            seq: mark.seq,
            path,
            pruned,
        })
    }

    /// Order-sensitive fingerprint of the full registry state —
    /// communities, rows, names and versions — for convergence
    /// assertions (recovered-equals-prefix). FNV-1a over the wire
    /// encoding plus versions.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_engine(&self.engine)
    }

    /// Durability metrics only (`csj_wal_*`, `csj_recovery_*`,
    /// `csj_snapshots_*`).
    pub fn durability_metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Engine metrics merged with the durability series — one
    /// exposition for the whole durable registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.engine.metrics_snapshot();
        snap.metrics.extend(self.obs.snapshot().metrics);
        snap
    }
}

/// Fingerprint any engine's registry (used to compare a live engine
/// against a recovered one).
pub fn fingerprint_engine(engine: &CsjEngine) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(&(engine.d() as u64).to_le_bytes());
    for handle in engine.handles() {
        let c = engine.community(handle).expect("handle from iterator");
        let version = engine.community_version(handle).expect("handle valid");
        eat(&handle.0.to_le_bytes());
        eat(&version.to_le_bytes());
        eat(&(c.name().len() as u64).to_le_bytes());
        eat(c.name().as_bytes());
        eat(&(c.len() as u64).to_le_bytes());
        for &id in c.user_ids() {
            eat(&id.to_le_bytes());
        }
        for &v in c.raw_data() {
            eat(&v.to_le_bytes());
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csj-dur-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> DurableEngine {
        DurableEngine::open(dir, 2, EngineConfig::new(1), DurabilityConfig::default()).unwrap()
    }

    fn community(name: &str, rows: &[(u64, [u32; 2])]) -> Community {
        Community::from_rows(name, 2, rows.iter().map(|&(id, v)| (id, v.to_vec()))).unwrap()
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = scratch("reopen");
        let mut d = open(&dir);
        let (h, ack) = d
            .register(community("a", &[(1, [1, 1]), (2, [2, 2])]))
            .unwrap();
        assert_eq!(ack.seq, 1);
        assert!(ack.synced);
        d.upsert_user(h, 3, &[7, 7]).unwrap();
        d.remove_user(h, 1).unwrap();
        let live = d.fingerprint();
        drop(d);

        let d2 = open(&dir);
        assert_eq!(d2.report().records_replayed, 3);
        assert_eq!(d2.fingerprint(), live, "recovered state is bit-identical");
        let h2 = d2.engine().find("a").unwrap();
        assert_eq!(h2, h);
        assert_eq!(d2.engine().community_version(h2).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_mutations_log_nothing() {
        let dir = scratch("reject");
        let mut d = open(&dir);
        let (h, _) = d.register(community("a", &[(1, [1, 1])])).unwrap();
        assert!(d.register(community("a", &[(1, [1, 1])])).is_err());
        assert!(d.upsert_user(h, 1, &[1, 2, 3]).is_err());
        assert!(d.remove_user(h, 99).is_err());
        assert!(d.upsert_user(CommunityHandle(9), 1, &[1, 1]).is_err());
        let wrong_d = Community::new("b", 5);
        assert!(d.register(wrong_d).is_err());
        // Only the one good record hit the log.
        assert_eq!(
            d.durability_metrics()
                .counter_value("csj_wal_appends_total", &[]),
            1
        );
        drop(d);
        let d2 = open(&dir);
        assert_eq!(d2.report().records_replayed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_wal_and_reopen_uses_it() {
        let dir = scratch("snap");
        let mut d = open(&dir);
        let (h, _) = d.register(community("a", &[(1, [1, 1])])).unwrap();
        d.upsert_user(h, 2, &[2, 2]).unwrap();
        let out = d.snapshot().unwrap();
        assert_eq!(out.seq, 3, "register + upsert + mark");
        assert!(out.path.exists());
        // Post-snapshot mutation lands in the (now tiny) WAL.
        d.upsert_user(h, 4, &[4, 4]).unwrap();
        let live = d.fingerprint();
        drop(d);

        let d2 = open(&dir);
        assert_eq!(d2.report().snapshot_seq, Some(3));
        assert_eq!(d2.report().snapshot_entries, 1);
        assert_eq!(d2.report().records_replayed, 1, "only the post-snapshot op");
        assert_eq!(d2.fingerprint(), live);
        // Sequence numbering continued across the reopen.
        assert_eq!(d2.report().last_seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_fsync_acks_batch_on_the_flush() {
        let dir = scratch("interval");
        let mut d = DurableEngine::open(
            &dir,
            2,
            EngineConfig::new(1),
            DurabilityConfig {
                fsync: FsyncPolicy::Interval(2),
                keep_snapshots: 2,
            },
        )
        .unwrap();
        let (h, a1) = d.register(community("a", &[(1, [1, 1])])).unwrap();
        assert!(!a1.synced, "first of the batch rides");
        let a2 = d.upsert_user(h, 2, &[2, 2]).unwrap();
        assert!(a2.synced, "second append flushes the batch");
        let a3 = d.upsert_user(h, 3, &[3, 3]).unwrap();
        assert!(!a3.synced);
        d.sync().unwrap();
        let m = d.durability_metrics();
        assert_eq!(m.counter_value("csj_wal_appends_total", &[]), 3);
        assert_eq!(m.counter_value("csj_wal_fsyncs_total", &[]), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_merge_engine_and_durability_series() {
        let dir = scratch("metrics");
        let mut d = open(&dir);
        d.register(community("a", &[(1, [1, 1])])).unwrap();
        let snap = d.metrics_snapshot();
        assert!(snap.find("csj_wal_appends_total", &[]).is_some());
        assert!(snap.find("csj_queries_total", &[]).is_some() || !snap.metrics.is_empty());
        let prom = snap.to_prometheus();
        assert!(prom.contains("csj_wal_appends_total"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn into_engine_hands_over_recovered_state() {
        let dir = scratch("into");
        let mut d = open(&dir);
        let (h, _) = d
            .register(community("a", &[(1, [1, 1]), (2, [5, 5])]))
            .unwrap();
        let engine = d.into_engine().unwrap();
        assert_eq!(engine.community(h).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
