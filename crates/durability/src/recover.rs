//! Recovery: latest valid snapshot + WAL tail replay, stopping cleanly
//! at the first torn/corrupt record.
//!
//! The contract the crash-point property suite enforces: for *any*
//! crash point — torn append, sheared tail, flipped bit, failed
//! snapshot rename — recovery rebuilds exactly a prefix of the applied
//! mutation sequence (no holes, no reordering, no panic) and says what
//! it did in a typed [`RecoveryReport`].

use std::path::Path;

use csj_engine::{CsjEngine, EngineConfig, EngineError};

use crate::error::DurabilityError;
use crate::record::{WalOp, WalRecord};
use crate::snapshot::latest_valid_snapshot;
use crate::wal::{read_wal, TailReason};

/// The WAL file name inside a durable registry directory.
pub const WAL_FILE: &str = "wal.log";

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot the registry was rebuilt from,
    /// if any verified.
    pub snapshot_seq: Option<u64>,
    /// Registry entries restored from that snapshot.
    pub snapshot_entries: usize,
    /// Damaged snapshot files skipped during selection.
    pub snapshots_skipped: usize,
    /// WAL records replayed onto the restored image.
    pub records_replayed: u64,
    /// Valid WAL records *not* replayed because the snapshot already
    /// contains them (crash between snapshot write and WAL truncation).
    pub records_skipped: u64,
    /// Bytes of torn/corrupt WAL tail discarded.
    pub bytes_discarded: u64,
    /// Why the WAL scan stopped (CleanEof when nothing was lost).
    pub wal_tail: TailReason,
    /// Bytes of WAL covered by the valid prefix — the tail-repair
    /// truncation point.
    pub wal_valid_bytes: u64,
    /// Highest sequence number in the recovered state; appends continue
    /// at `last_seq + 1`.
    pub last_seq: u64,
}

impl RecoveryReport {
    /// One-line human/grep-friendly summary (used by `csj recover` and
    /// the serve-sim durable report).
    pub fn summary(&self) -> String {
        format!(
            "snapshot-seq={} snapshot-entries={} snapshots-skipped={} replayed={} \
             skipped={} discarded-bytes={} tail={} last-seq={}",
            self.snapshot_seq
                .map(|s| s.to_string())
                .unwrap_or_else(|| "none".into()),
            self.snapshot_entries,
            self.snapshots_skipped,
            self.records_replayed,
            self.records_skipped,
            self.bytes_discarded,
            self.wal_tail,
            self.last_seq,
        )
    }
}

/// Rebuild a registry from `dir` without modifying anything on disk.
///
/// `default_d` is used only when the directory holds no state at all
/// (the dimensionality of the empty engine); otherwise the recovered
/// entries fix it. Returns the engine plus the report.
pub fn recover_dir(
    dir: &Path,
    default_d: usize,
    config: EngineConfig,
) -> Result<(CsjEngine, RecoveryReport), DurabilityError> {
    let (snapshot, skipped) = latest_valid_snapshot(dir)?;
    let wal = read_wal(&dir.join(WAL_FILE))?;

    let (snapshot_seq, entries) = match snapshot {
        Some((_, image)) => (Some(image.last_seq), image.entries),
        None => (None, Vec::new()),
    };
    let floor = snapshot_seq.unwrap_or(0);

    // Dimensionality: first restored entry, else first replayable
    // Register record, else the caller's default.
    let d = entries
        .first()
        .map(|e| e.community.d())
        .or_else(|| {
            wal.records.iter().find_map(|r| match &r.op {
                WalOp::Register { community } if r.seq > floor => Some(community.d()),
                _ => None,
            })
        })
        .unwrap_or(default_d);

    let mut engine = CsjEngine::new(d, config);
    let snapshot_entries = entries.len();
    for entry in entries {
        engine
            .restore(entry.community, entry.version)
            .map_err(|e| DurabilityError::Corrupt {
                context: format!("snapshot in {}", dir.display()),
                reason: format!("restore rejected: {e}"),
            })?;
    }

    let mut replayed = 0u64;
    let mut skipped_records = 0u64;
    let mut last_seq = floor;
    for record in &wal.records {
        if record.seq <= floor {
            // Pre-snapshot leftovers: the crash hit between snapshot
            // write and WAL truncation. The snapshot already holds
            // their effects.
            skipped_records += 1;
            continue;
        }
        apply(&mut engine, record).map_err(|source| DurabilityError::ReplayMismatch {
            seq: record.seq,
            source,
        })?;
        replayed += 1;
        last_seq = record.seq;
    }

    let report = RecoveryReport {
        snapshot_seq,
        snapshot_entries,
        snapshots_skipped: skipped.len(),
        records_replayed: replayed,
        records_skipped: skipped_records,
        bytes_discarded: wal.bytes_discarded(),
        wal_tail: wal.reason,
        wal_valid_bytes: wal.valid_bytes,
        last_seq,
    };
    Ok((engine, report))
}

/// Apply one WAL record to the engine.
pub(crate) fn apply(engine: &mut CsjEngine, record: &WalRecord) -> Result<(), EngineError> {
    match &record.op {
        WalOp::Register { community } => engine.register(community.clone()).map(|_| ()),
        WalOp::UpsertUser {
            handle,
            user,
            vector,
        } => engine.upsert_user(csj_engine::CommunityHandle(*handle), *user, vector),
        WalOp::RemoveUser { handle, user } => {
            engine.remove_user(csj_engine::CommunityHandle(*handle), *user)
        }
        WalOp::SnapshotMark => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{write_snapshot, SnapshotEntry, SnapshotImage};
    use crate::wal::{FsyncPolicy, Wal};
    use csj_core::Community;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csj-rec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn register_op(name: &str) -> WalOp {
        WalOp::Register {
            community: Community::from_rows(name, 2, vec![(1u64, vec![1u32, 1])]).unwrap(),
        }
    }

    #[test]
    fn empty_dir_recovers_empty_registry() {
        let dir = scratch("empty");
        let (engine, report) = recover_dir(&dir, 3, EngineConfig::new(1)).unwrap();
        assert_eq!(engine.handles().count(), 0);
        assert_eq!(engine.d(), 3);
        assert_eq!(report.last_seq, 0);
        assert_eq!(report.wal_tail, TailReason::CleanEof);
        assert!(report.summary().contains("snapshot-seq=none"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_only_recovery_replays_in_order() {
        let dir = scratch("walonly");
        let mut wal = Wal::open(&dir.join(WAL_FILE), FsyncPolicy::Always, 1).unwrap();
        wal.append(register_op("a")).unwrap();
        wal.append(WalOp::UpsertUser {
            handle: 0,
            user: 9,
            vector: vec![4, 4],
        })
        .unwrap();
        wal.append(WalOp::RemoveUser { handle: 0, user: 1 })
            .unwrap();
        drop(wal);
        let (engine, report) = recover_dir(&dir, 7, EngineConfig::new(1)).unwrap();
        assert_eq!(engine.d(), 2, "d inferred from the Register record");
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.last_seq, 3);
        let h = engine.find("a").unwrap();
        assert_eq!(engine.community(h).unwrap().user_ids(), &[9]);
        assert_eq!(engine.community_version(h).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_floor_skips_pre_snapshot_records() {
        let dir = scratch("floor");
        // WAL holds seqs 1..=3; snapshot covers through 2 (crash before
        // WAL truncation).
        let mut wal = Wal::open(&dir.join(WAL_FILE), FsyncPolicy::Always, 1).unwrap();
        wal.append(register_op("a")).unwrap();
        wal.append(WalOp::SnapshotMark).unwrap();
        wal.append(WalOp::UpsertUser {
            handle: 0,
            user: 2,
            vector: vec![5, 5],
        })
        .unwrap();
        drop(wal);
        write_snapshot(
            &dir,
            &SnapshotImage {
                last_seq: 2,
                entries: vec![SnapshotEntry {
                    community: Community::from_rows("a", 2, vec![(1u64, vec![1u32, 1])]).unwrap(),
                    version: 0,
                }],
            },
        )
        .unwrap();
        let (engine, report) = recover_dir(&dir, 2, EngineConfig::new(1)).unwrap();
        assert_eq!(report.snapshot_seq, Some(2));
        assert_eq!(report.records_skipped, 2);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.last_seq, 3);
        let h = engine.find("a").unwrap();
        assert_eq!(engine.community(h).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let dir = scratch("torn");
        let mut wal = Wal::open(&dir.join(WAL_FILE), FsyncPolicy::Always, 1).unwrap();
        wal.append(register_op("a")).unwrap();
        drop(wal);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[1, 2, 3, 4, 5]).unwrap();
        drop(f);
        let (engine, report) = recover_dir(&dir, 2, EngineConfig::new(1)).unwrap();
        assert_eq!(engine.handles().count(), 1);
        assert_eq!(report.bytes_discarded, 5);
        assert!(matches!(report.wal_tail, TailReason::TornFrame { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_mismatch_is_a_typed_hard_error() {
        let dir = scratch("mismatch");
        let mut wal = Wal::open(&dir.join(WAL_FILE), FsyncPolicy::Always, 1).unwrap();
        // An upsert against a handle that was never registered: the log
        // and the (absent) snapshot disagree.
        wal.append(WalOp::UpsertUser {
            handle: 4,
            user: 1,
            vector: vec![1, 1],
        })
        .unwrap();
        drop(wal);
        let err = recover_dir(&dir, 2, EngineConfig::new(1)).unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::ReplayMismatch { seq: 1, .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
