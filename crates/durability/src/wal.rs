//! The append-only write-ahead log.
//!
//! Frame layout (little-endian), one frame per record:
//!
//! ```text
//! len   u32   payload length
//! crc   u32   CRC32 of the payload bytes
//! payload     seq u64 | tag u8 | body   (see `record`)
//! ```
//!
//! Writes are log-before-apply: a mutation is appended (and fsynced per
//! policy) before the in-memory registry changes. Each record is
//! written with a single `write_all`, so a crash tears at most the last
//! frame — and the reader treats *anything* wrong at the tail (short
//! header, short payload, checksum mismatch, undecodable payload,
//! sequence break) as "the log ends here", returning the valid prefix
//! plus a typed reason instead of an error or a panic.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use csj_core::checksum::crc32;

use crate::error::DurabilityError;
use crate::record::{decode_record, encode_record, WalOp, WalRecord};

/// Frame header: length prefix + checksum.
pub const FRAME_HEADER_BYTES: u64 = 8;

/// Upper bound on one payload; a length field above this is corruption,
/// not a 300 MB community.
pub const MAX_PAYLOAD_BYTES: u32 = 256 * 1024 * 1024;

/// When appends become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: an acked mutation survives any crash.
    Always,
    /// fsync once per `n` appends (and on demand): bounded loss window
    /// of at most `n - 1` acked-but-unsynced mutations on power loss,
    /// much higher throughput. `Interval(0)` and `Interval(1)` behave
    /// like [`FsyncPolicy::Always`].
    Interval(u32),
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(n) => write!(f, "interval:{n}"),
        }
    }
}

/// What one append did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Whether the record is on stable storage (fsync ran at or after
    /// this append). `false` only under `Interval` batching.
    pub synced: bool,
    /// Frame bytes written.
    pub bytes: u64,
    /// fsync wall time, when this append triggered one.
    pub fsync_latency: Option<Duration>,
}

/// Why WAL reading stopped where it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailReason {
    /// The file ends exactly on a frame boundary: nothing lost.
    CleanEof,
    /// The last frame is incomplete — the classic torn write.
    TornFrame {
        /// Bytes present past the last valid frame.
        have: u64,
        /// Bytes the frame header promised.
        need: u64,
    },
    /// A length field no writer could have produced.
    BadLength {
        /// The impossible length.
        len: u32,
    },
    /// The payload does not hash to its recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u32,
        /// Checksum of the bytes present.
        got: u32,
    },
    /// The checksum held but the payload does not parse — only possible
    /// if corruption hit both payload and checksum consistently, or a
    /// foreign/newer record format landed in the log.
    BadPayload(String),
    /// The record parsed but its sequence number is not `prev + 1`:
    /// a hole or reordering. Replaying past it could interleave states,
    /// so the log is treated as ending at the break.
    SequenceBreak {
        /// Last good sequence number.
        prev: u64,
        /// What the next record claimed.
        got: u64,
    },
}

impl std::fmt::Display for TailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailReason::CleanEof => write!(f, "clean-eof"),
            TailReason::TornFrame { have, need } => write!(f, "torn-frame:{have}/{need}"),
            TailReason::BadLength { len } => write!(f, "bad-length:{len}"),
            TailReason::ChecksumMismatch { expected, got } => {
                write!(f, "checksum-mismatch:{expected:#010x}!={got:#010x}")
            }
            TailReason::BadPayload(msg) => write!(f, "bad-payload:{msg}"),
            TailReason::SequenceBreak { prev, got } => write!(f, "sequence-break:{prev}->{got}"),
        }
    }
}

/// Everything a WAL scan recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReadOutcome {
    /// The valid record prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes covered by that prefix — the truncation point for tail
    /// repair.
    pub valid_bytes: u64,
    /// Total file size.
    pub total_bytes: u64,
    /// Why the scan stopped.
    pub reason: TailReason,
}

impl WalReadOutcome {
    /// Bytes past the valid prefix (the torn/corrupt tail).
    pub fn bytes_discarded(&self) -> u64 {
        self.total_bytes - self.valid_bytes
    }
}

/// Scan a WAL file, returning the longest valid record prefix and a
/// typed reason for stopping. A missing file is an empty log, not an
/// error; real I/O failures (permissions, bad disk) still surface.
pub fn read_wal(path: &Path) -> std::io::Result<WalReadOutcome> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(scan(&bytes))
}

fn scan(bytes: &[u8]) -> WalReadOutcome {
    let total = bytes.len() as u64;
    let mut records: Vec<WalRecord> = Vec::new();
    let mut pos: usize = 0;
    let reason = loop {
        if pos == bytes.len() {
            break TailReason::CleanEof;
        }
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_BYTES as usize {
            break TailReason::TornFrame {
                have: rest.len() as u64,
                need: FRAME_HEADER_BYTES,
            };
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_PAYLOAD_BYTES {
            break TailReason::BadLength { len };
        }
        let expected = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let frame_len = FRAME_HEADER_BYTES as usize + len as usize;
        if rest.len() < frame_len {
            break TailReason::TornFrame {
                have: rest.len() as u64,
                need: frame_len as u64,
            };
        }
        let payload = &rest[FRAME_HEADER_BYTES as usize..frame_len];
        let got = crc32(payload);
        if got != expected {
            break TailReason::ChecksumMismatch { expected, got };
        }
        let record = match decode_record(payload) {
            Ok(r) => r,
            Err(e) => break TailReason::BadPayload(e.to_string()),
        };
        if let Some(prev) = records.last() {
            if record.seq != prev.seq + 1 {
                break TailReason::SequenceBreak {
                    prev: prev.seq,
                    got: record.seq,
                };
            }
        }
        records.push(record);
        pos += frame_len;
    };
    WalReadOutcome {
        records,
        valid_bytes: pos as u64,
        total_bytes: total,
        reason,
    }
}

/// The append-side handle: owns the open file, the sequence counter and
/// the fsync policy.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    next_seq: u64,
    /// Appends since the last fsync.
    unsynced: u32,
    #[cfg(feature = "fault-injection")]
    faults: Option<crate::fault::FsFaultPlan>,
}

impl Wal {
    /// Open (creating if absent) the log for appending. `next_seq` is
    /// the sequence number the next record gets — recovery passes
    /// `last_seq + 1`.
    pub fn open(path: &Path, policy: FsyncPolicy, next_seq: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            policy,
            next_seq,
            unsynced: 0,
            #[cfg(feature = "fault-injection")]
            faults: None,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Install a filesystem fault plan (torn writes). Chaos harness
    /// only.
    #[cfg(feature = "fault-injection")]
    pub fn inject_faults(&mut self, plan: crate::fault::FsFaultPlan) {
        self.faults = Some(plan);
    }

    /// Append one operation: frame it, write it, fsync per policy.
    /// The record is on disk (though maybe not yet synced) before the
    /// caller applies the mutation anywhere.
    pub fn append(&mut self, op: WalOp) -> Result<AppendOutcome, DurabilityError> {
        let record = WalRecord {
            seq: self.next_seq,
            op,
        };
        let mut payload = Vec::with_capacity(64);
        encode_record(&record, &mut payload);
        debug_assert!(payload.len() as u64 <= MAX_PAYLOAD_BYTES as u64);
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.faults {
            if let Some(grant) = plan.take_wal_budget(frame.len()) {
                if grant < frame.len() {
                    // Persist exactly the granted prefix — the bytes a
                    // real crash would have left — then report the
                    // crash. The record was never acked and is not
                    // applied.
                    self.file.write_all(&frame[..grant])?;
                    let _ = self.file.sync_all();
                    return Err(DurabilityError::InjectedCrash);
                }
            }
        }

        self.file.write_all(&frame)?;
        self.next_seq += 1;
        self.unsynced += 1;
        let must_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(n) => self.unsynced >= n.max(1),
        };
        let fsync_latency = if must_sync { self.sync()? } else { None };
        Ok(AppendOutcome {
            seq: record.seq,
            synced: self.unsynced == 0,
            bytes: frame.len() as u64,
            fsync_latency,
        })
    }

    /// Force an fsync of everything appended so far; returns the fsync
    /// wall time when one actually ran.
    pub fn sync(&mut self) -> std::io::Result<Option<Duration>> {
        if self.unsynced == 0 {
            return Ok(None);
        }
        let start = Instant::now();
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(Some(start.elapsed()))
    }

    /// Truncate the log to empty after a successful snapshot. The
    /// snapshot is already durable at this point, so records up to its
    /// sequence number are redundant; sequence numbering continues
    /// where it left off.
    pub fn reset_after_snapshot(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Repair a torn tail in place: truncate the file to `valid_bytes`
    /// (from a [`read_wal`] scan) so appends continue from a clean
    /// boundary. Returns the bytes cut.
    pub fn repair_tail(path: &Path, valid_bytes: u64) -> std::io::Result<u64> {
        match OpenOptions::new().write(true).open(path) {
            Ok(f) => {
                let len = f.metadata()?.len();
                if len > valid_bytes {
                    f.set_len(valid_bytes)?;
                    f.sync_all()?;
                }
                Ok(len.saturating_sub(valid_bytes))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csj-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn upsert(handle: u32, user: u64) -> WalOp {
        WalOp::UpsertUser {
            handle,
            user,
            vector: vec![1, 2, 3],
        }
    }

    #[test]
    fn append_then_read_roundtrips() {
        let dir = scratch("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 1).unwrap();
        for i in 0..5u64 {
            let out = wal.append(upsert(0, i)).unwrap();
            assert_eq!(out.seq, i + 1);
            assert!(out.synced);
        }
        let read = read_wal(&path).unwrap();
        assert_eq!(read.reason, TailReason::CleanEof);
        assert_eq!(read.records.len(), 5);
        assert_eq!(read.valid_bytes, read.total_bytes);
        assert_eq!(read.records[3].seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let read = read_wal(Path::new("/nonexistent/csj/wal.log")).unwrap();
        assert_eq!(read.records.len(), 0);
        assert_eq!(read.reason, TailReason::CleanEof);
    }

    #[test]
    fn interval_policy_batches_fsyncs() {
        let dir = scratch("interval");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Interval(3), 1).unwrap();
        let a = wal.append(upsert(0, 1)).unwrap();
        let b = wal.append(upsert(0, 2)).unwrap();
        let c = wal.append(upsert(0, 3)).unwrap();
        assert!(!a.synced && !b.synced, "first two ride the batch");
        assert!(c.synced, "third append hits the interval");
        assert!(c.fsync_latency.is_some());
        let d = wal.append(upsert(0, 4)).unwrap();
        assert!(!d.synced);
        assert!(wal.sync().unwrap().is_some(), "explicit sync flushes");
        assert!(wal.sync().unwrap().is_none(), "nothing left to sync");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_yields_prefix_at_every_byte() {
        let dir = scratch("truncate");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 1).unwrap();
        let mut boundaries = vec![0u64];
        for i in 0..4u64 {
            let out = wal.append(upsert(0, i)).unwrap();
            boundaries.push(boundaries.last().unwrap() + out.bytes);
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            let part = scan(&full[..cut]);
            // The prefix property: every cut recovers exactly the
            // records whose frames fit entirely below the cut.
            let want = boundaries
                .iter()
                .filter(|&&b| b > 0 && b <= cut as u64)
                .count();
            assert_eq!(part.records.len(), want, "cut at {cut}");
            assert_eq!(part.valid_bytes, boundaries[want], "cut at {cut}");
            if boundaries.contains(&(cut as u64)) {
                assert_eq!(part.reason, TailReason::CleanEof);
            } else {
                assert!(
                    matches!(part.reason, TailReason::TornFrame { .. }),
                    "cut at {cut}: {:?}",
                    part.reason
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_stops_scan_with_typed_reason() {
        let dir = scratch("flip");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 1).unwrap();
        let first = wal.append(upsert(0, 1)).unwrap();
        wal.append(upsert(0, 2)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second record.
        let idx = first.bytes as usize + FRAME_HEADER_BYTES as usize + 3;
        bytes[idx] ^= 0x10;
        let read = scan(&bytes);
        assert_eq!(read.records.len(), 1, "prefix before the flip survives");
        assert!(matches!(read.reason, TailReason::ChecksumMismatch { .. }));
        assert_eq!(read.bytes_discarded(), bytes.len() as u64 - first.bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absurd_length_field_is_bad_length() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let read = scan(&bytes);
        assert!(read.records.is_empty());
        assert!(matches!(read.reason, TailReason::BadLength { .. }));
    }

    #[test]
    fn sequence_break_stops_the_scan() {
        let dir = scratch("seqbreak");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 1).unwrap();
        wal.append(upsert(0, 1)).unwrap();
        drop(wal);
        // A second writer starting at the wrong sequence simulates a
        // spliced/holed log.
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 7).unwrap();
        wal.append(upsert(0, 2)).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 1);
        assert_eq!(read.reason, TailReason::SequenceBreak { prev: 1, got: 7 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_after_snapshot_empties_the_log() {
        let dir = scratch("reset");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 1).unwrap();
        wal.append(upsert(0, 1)).unwrap();
        wal.append(WalOp::SnapshotMark).unwrap();
        wal.reset_after_snapshot().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // Sequence numbering continues.
        let out = wal.append(upsert(0, 2)).unwrap();
        assert_eq!(out.seq, 3);
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 1);
        assert_eq!(read.records[0].seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_tail_truncates_to_valid_prefix() {
        let dir = scratch("repair");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 1).unwrap();
        wal.append(upsert(0, 1)).unwrap();
        let good = std::fs::metadata(&path).unwrap().len();
        drop(wal);
        // Simulate a torn write: half a frame header dangling.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);
        let read = read_wal(&path).unwrap();
        assert_eq!(read.valid_bytes, good);
        let cut = Wal::repair_tail(&path, read.valid_bytes).unwrap();
        assert_eq!(cut, 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        assert_eq!(read_wal(&path).unwrap().reason, TailReason::CleanEof);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
