//! WAL record payloads: the four mutation operations and their
//! little-endian wire form.
//!
//! A payload is `seq: u64 | tag: u8 | body`; the frame around it (length
//! prefix + CRC32) lives in [`crate::wal`]. Decoding is fully checked —
//! a truncated or nonsensical payload returns a typed reason, never
//! panics — because recovery feeds it bytes that survived a crash.

use csj_core::Community;

/// One durable mutation (or marker) in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Register a new community. Handles are assigned in registration
    /// order, so replay reproduces them without logging them.
    Register {
        /// The full community at registration time.
        community: Community,
    },
    /// Insert or overwrite one user's profile vector.
    UpsertUser {
        /// Raw id of the community handle.
        handle: u32,
        /// The user id.
        user: u64,
        /// The profile vector (`d` counters).
        vector: Vec<u32>,
    },
    /// Remove one user.
    RemoveUser {
        /// Raw id of the community handle.
        handle: u32,
        /// The user id.
        user: u64,
    },
    /// The registry was snapshotted at exactly this record's sequence
    /// number. State no-op; lets an un-truncated WAL be cross-checked
    /// against the snapshot files.
    SnapshotMark,
}

/// A sequenced WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonically increasing sequence number (1-based, +1 per
    /// record, markers included).
    pub seq: u64,
    /// The operation.
    pub op: WalOp,
}

const TAG_REGISTER: u8 = 1;
const TAG_UPSERT: u8 = 2;
const TAG_REMOVE: u8 = 3;
const TAG_SNAPSHOT_MARK: u8 = 4;

/// Why a payload failed to decode. Recovery maps this to "stop here,
/// the tail is torn/corrupt".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// Unknown operation tag.
    BadTag(u8),
    /// A community name was not UTF-8.
    BadName,
    /// A structural field is impossible (d = 0, n * d overflow, length
    /// disagreement).
    BadStructure(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown op tag {t}"),
            DecodeError::BadName => write!(f, "community name not UTF-8"),
            DecodeError::BadStructure(msg) => write!(f, "bad structure: {msg}"),
        }
    }
}

/// Append the record's payload bytes (seq + tag + body) to `out`.
pub fn encode_record(record: &WalRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&record.seq.to_le_bytes());
    match &record.op {
        WalOp::Register { community } => {
            out.push(TAG_REGISTER);
            encode_community(community, out);
        }
        WalOp::UpsertUser {
            handle,
            user,
            vector,
        } => {
            out.push(TAG_UPSERT);
            out.extend_from_slice(&handle.to_le_bytes());
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
            for &v in vector {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        WalOp::RemoveUser { handle, user } => {
            out.push(TAG_REMOVE);
            out.extend_from_slice(&handle.to_le_bytes());
            out.extend_from_slice(&user.to_le_bytes());
        }
        WalOp::SnapshotMark => out.push(TAG_SNAPSHOT_MARK),
    }
}

/// Decode one payload. The payload must be consumed exactly — spare
/// bytes mean the frame length lied.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, DecodeError> {
    let mut c = Cursor::new(payload);
    let seq = c.u64()?;
    let op = match c.u8()? {
        TAG_REGISTER => WalOp::Register {
            community: decode_community(&mut c)?,
        },
        TAG_UPSERT => {
            let handle = c.u32()?;
            let user = c.u64()?;
            let len = c.u32()? as usize;
            let mut vector = Vec::with_capacity(len.min(Cursor::MAX_PREALLOC));
            for _ in 0..len {
                vector.push(c.u32()?);
            }
            WalOp::UpsertUser {
                handle,
                user,
                vector,
            }
        }
        TAG_REMOVE => WalOp::RemoveUser {
            handle: c.u32()?,
            user: c.u64()?,
        },
        TAG_SNAPSHOT_MARK => WalOp::SnapshotMark,
        t => return Err(DecodeError::BadTag(t)),
    };
    if !c.is_empty() {
        return Err(DecodeError::BadStructure(format!(
            "{} spare bytes after op",
            c.remaining()
        )));
    }
    Ok(WalRecord { seq, op })
}

/// Append a community's wire form: `name_len u16 | name | version-free
/// header (d u32, n u64) | ids | data`. Shared by WAL records and
/// snapshot entries.
pub(crate) fn encode_community(community: &Community, out: &mut Vec<u8>) {
    let name = community.name().as_bytes();
    debug_assert!(name.len() <= u16::MAX as usize, "validated at register");
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(community.d() as u32).to_le_bytes());
    out.extend_from_slice(&(community.len() as u64).to_le_bytes());
    for &id in community.user_ids() {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for &v in community.raw_data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn decode_community(c: &mut Cursor<'_>) -> Result<Community, DecodeError> {
    let name_len = c.u16()? as usize;
    let name = String::from_utf8(c.bytes(name_len)?.to_vec()).map_err(|_| DecodeError::BadName)?;
    let d = c.u32()? as usize;
    if d == 0 {
        return Err(DecodeError::BadStructure("d must be positive".into()));
    }
    let n = c.u64()? as usize;
    n.checked_mul(d)
        .and_then(|v| v.checked_mul(4))
        .and_then(|v| v.checked_add(n.checked_mul(8)?))
        .ok_or_else(|| DecodeError::BadStructure("n * d overflows".into()))?;
    let mut ids = Vec::with_capacity(n.min(Cursor::MAX_PREALLOC));
    for _ in 0..n {
        ids.push(c.u64()?);
    }
    let mut community = Community::with_capacity(name, d, n.min(Cursor::MAX_PREALLOC));
    let mut row = vec![0u32; d];
    for (index, &id) in ids.iter().enumerate() {
        for v in row.iter_mut() {
            *v = c.u32()?;
        }
        community
            .push(id, &row)
            .map_err(|e| DecodeError::BadStructure(format!("record {index}: {e}")))?;
    }
    Ok(community)
}

/// Bounds-checked little-endian reader over a byte slice.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    /// Never pre-allocate more than this many elements from a length
    /// field: a corrupt length then fails with `Truncated` instead of
    /// an OOM-sized `Vec::with_capacity`.
    pub(crate) const MAX_PREALLOC: usize = 1 << 16;

    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_community() -> Community {
        Community::from_rows(
            "alpha",
            3,
            vec![(1u64, vec![1u32, 2, 3]), (u64::MAX, vec![0, u32::MAX, 9])],
        )
        .unwrap()
    }

    fn roundtrip(record: WalRecord) {
        let mut buf = Vec::new();
        encode_record(&record, &mut buf);
        assert_eq!(decode_record(&buf).unwrap(), record);
    }

    #[test]
    fn all_ops_roundtrip() {
        roundtrip(WalRecord {
            seq: 1,
            op: WalOp::Register {
                community: sample_community(),
            },
        });
        roundtrip(WalRecord {
            seq: u64::MAX,
            op: WalOp::UpsertUser {
                handle: 3,
                user: 42,
                vector: vec![7, 8, 9],
            },
        });
        roundtrip(WalRecord {
            seq: 2,
            op: WalOp::UpsertUser {
                handle: 0,
                user: 0,
                vector: vec![],
            },
        });
        roundtrip(WalRecord {
            seq: 3,
            op: WalOp::RemoveUser { handle: 1, user: 5 },
        });
        roundtrip(WalRecord {
            seq: 4,
            op: WalOp::SnapshotMark,
        });
    }

    #[test]
    fn rejects_bad_tag() {
        let mut buf = Vec::new();
        encode_record(
            &WalRecord {
                seq: 9,
                op: WalOp::SnapshotMark,
            },
            &mut buf,
        );
        buf[8] = 200;
        assert_eq!(decode_record(&buf), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn rejects_truncation_at_every_cut() {
        let mut buf = Vec::new();
        encode_record(
            &WalRecord {
                seq: 5,
                op: WalOp::Register {
                    community: sample_community(),
                },
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert!(decode_record(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_spare_bytes() {
        let mut buf = Vec::new();
        encode_record(
            &WalRecord {
                seq: 1,
                op: WalOp::RemoveUser { handle: 0, user: 1 },
            },
            &mut buf,
        );
        buf.push(0);
        assert!(matches!(
            decode_record(&buf),
            Err(DecodeError::BadStructure(_))
        ));
    }

    #[test]
    fn lying_length_fields_fail_without_huge_allocation() {
        // An upsert claiming a 4-billion-element vector in a 30-byte
        // payload must fail fast with Truncated.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(2); // TAG_UPSERT
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_record(&buf), Err(DecodeError::Truncated));
    }
}
