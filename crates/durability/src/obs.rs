//! Durability metrics, following the `ServiceObs` pattern: the
//! durability layer owns its own registry, and
//! [`crate::DurableEngine::metrics_snapshot`] merges it with the
//! engine's `csj_*` series for one exposition.

use std::sync::Arc;
use std::time::Duration;

use csj_obs::{Counter, LatencyHistogram, MetricsRegistry, MetricsSnapshot};

pub(crate) struct DurabilityObs {
    registry: MetricsRegistry,
    appends: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
    fsync_latency: Arc<LatencyHistogram>,
    snapshots_written: Arc<Counter>,
    recovery_replayed: Arc<Counter>,
    recovery_discarded: Arc<Counter>,
}

impl DurabilityObs {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        let appends = registry.counter(
            "csj_wal_appends_total",
            "WAL records appended (log-before-apply mutations and snapshot marks)",
            vec![],
        );
        let wal_bytes = registry.counter("csj_wal_bytes_total", "WAL frame bytes written", vec![]);
        let fsyncs = registry.counter(
            "csj_wal_fsyncs_total",
            "WAL fsync calls (per append under policy=always, batched under interval)",
            vec![],
        );
        let fsync_latency = registry.latency(
            "csj_wal_fsync_latency_seconds",
            "WAL fsync wall time",
            vec![],
        );
        let snapshots_written = registry.counter(
            "csj_snapshots_written_total",
            "Registry snapshots written and made durable",
            vec![],
        );
        let recovery_replayed = registry.counter(
            "csj_recovery_replayed_total",
            "WAL records replayed onto the restored snapshot image during recovery",
            vec![],
        );
        let recovery_discarded = registry.counter(
            "csj_recovery_discarded_total",
            "Bytes of torn/corrupt WAL tail discarded during recovery",
            vec![],
        );
        Self {
            registry,
            appends,
            wal_bytes,
            fsyncs,
            fsync_latency,
            snapshots_written,
            recovery_replayed,
            recovery_discarded,
        }
    }

    pub(crate) fn on_append(&self, bytes: u64, fsync_latency: Option<Duration>) {
        self.appends.inc();
        self.wal_bytes.add(bytes);
        self.on_sync(fsync_latency);
    }

    pub(crate) fn on_sync(&self, fsync_latency: Option<Duration>) {
        if let Some(elapsed) = fsync_latency {
            self.fsyncs.inc();
            self.fsync_latency.observe(elapsed);
        }
    }

    pub(crate) fn on_snapshot(&self) {
        self.snapshots_written.inc();
    }

    pub(crate) fn on_recovery(&self, replayed: u64, discarded_bytes: u64) {
        self.recovery_replayed.add(replayed);
        self.recovery_discarded.add(discarded_bytes);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let obs = DurabilityObs::new();
        obs.on_append(100, Some(Duration::from_micros(50)));
        obs.on_append(20, None);
        obs.on_snapshot();
        obs.on_recovery(7, 13);
        let snap = obs.snapshot();
        assert_eq!(snap.counter_value("csj_wal_appends_total", &[]), 2);
        assert_eq!(snap.counter_value("csj_wal_bytes_total", &[]), 120);
        assert_eq!(snap.counter_value("csj_wal_fsyncs_total", &[]), 1);
        assert_eq!(snap.counter_value("csj_recovery_replayed_total", &[]), 7);
        assert_eq!(snap.counter_value("csj_recovery_discarded_total", &[]), 13);
        let prom = snap.to_prometheus();
        assert!(prom.contains("csj_wal_fsync_latency_seconds_bucket"));
        assert!(prom.contains("csj_snapshots_written_total 1"));
    }
}
