//! Durability error type.

use csj_engine::EngineError;

/// Errors returned by the durability layer.
#[derive(Debug)]
pub enum DurabilityError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A pre-validated mutation was rejected by the engine. Reaching
    /// this after WAL append means log and registry disagree — the
    /// record stays in the log, the error says why it did not apply.
    Engine(EngineError),
    /// A snapshot or WAL structure is damaged beyond the torn-tail
    /// handling recovery performs silently (e.g. every snapshot in the
    /// directory fails its checksum, or a record decoded but cannot
    /// re-apply).
    Corrupt {
        /// What was being read.
        context: String,
        /// Why it was rejected.
        reason: String,
    },
    /// Replaying a structurally valid WAL record failed against the
    /// recovered registry: the log and the snapshot disagree about
    /// state (wrong directory pairing, or a bug). Recovery stops hard
    /// rather than guessing.
    ReplayMismatch {
        /// Sequence number of the record that failed to apply.
        seq: u64,
        /// The engine's rejection.
        source: EngineError,
    },
    /// An injected filesystem fault fired (torn write, rename failure).
    /// Produced only by the `fault-injection` chaos harness, never in
    /// production. The write that triggered it is torn exactly the way
    /// a real crash would tear it.
    InjectedCrash,
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<EngineError> for DurabilityError {
    fn from(e: EngineError) -> Self {
        DurabilityError::Engine(e)
    }
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "I/O error: {e}"),
            DurabilityError::Engine(e) => write!(f, "engine rejected mutation: {e}"),
            DurabilityError::Corrupt { context, reason } => {
                write!(f, "corrupt {context}: {reason}")
            }
            DurabilityError::ReplayMismatch { seq, source } => {
                write!(f, "WAL record seq {seq} failed to re-apply: {source}")
            }
            DurabilityError::InjectedCrash => write!(f, "injected filesystem fault (torn write)"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Engine(e) | DurabilityError::ReplayMismatch { source: e, .. } => {
                Some(e)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DurabilityError::from(std::io::Error::other("disk gone"))
            .to_string()
            .contains("disk gone"));
        assert!(DurabilityError::from(EngineError::UnknownCommunity(7))
            .to_string()
            .contains("handle 7"),);
        let c = DurabilityError::Corrupt {
            context: "snapshot x".into(),
            reason: "bad magic".into(),
        };
        assert!(c.to_string().contains("snapshot x"));
        let r = DurabilityError::ReplayMismatch {
            seq: 12,
            source: EngineError::UnknownUser(5),
        };
        assert!(r.to_string().contains("seq 12"));
        assert!(DurabilityError::InjectedCrash.to_string().contains("torn"));
    }
}
