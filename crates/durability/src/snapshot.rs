//! Checksummed full-registry snapshots.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic    "CSJS"     4 bytes
//! version  u16        currently 1
//! last_seq u64        WAL sequence number the image includes
//! count    u32        registry entries
//! entries  count ×    entry_version u64 | community wire form
//! crc32    u32        CRC32 of every byte above
//! ```
//!
//! Snapshots are written atomically (temp + fsync + rename + directory
//! fsync) to `snapshot-<seq>.csjs`; a crash mid-write leaves at worst a
//! temp file recovery ignores. Readers verify the footer before
//! trusting a byte, and [`latest_valid_snapshot`] skips damaged files
//! (reporting them) rather than aborting — an older good snapshot plus
//! a longer WAL replay beats no recovery at all.

use std::path::{Path, PathBuf};

use csj_core::checksum::crc32;
use csj_core::Community;

use crate::atomic::write_atomic;
use crate::error::DurabilityError;
use crate::record::{decode_community, encode_community, Cursor};

const MAGIC: &[u8; 4] = b"CSJS";
const VERSION: u16 = 1;

/// One registry entry in an image: the community plus its engine
/// version (mutations since registration), so cache-freshness semantics
/// survive recovery bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// The community, in handle order.
    pub community: Community,
    /// The engine's per-entry mutation version.
    pub version: u64,
}

/// A decoded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotImage {
    /// The WAL sequence number the image is current through: replay
    /// applies only records with `seq > last_seq`.
    pub last_seq: u64,
    /// Registry entries in handle order.
    pub entries: Vec<SnapshotEntry>,
}

/// The path a snapshot at `seq` lives at. Zero-padded so lexicographic
/// and numeric order agree.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:020}.csjs"))
}

/// Serialize and atomically persist `image`; returns the path written.
pub fn write_snapshot(dir: &Path, image: &SnapshotImage) -> Result<PathBuf, DurabilityError> {
    write_snapshot_inner(dir, image, false)
}

/// As [`write_snapshot`], but honoring an injected rename failure.
#[cfg(feature = "fault-injection")]
pub(crate) fn write_snapshot_faulty(
    dir: &Path,
    image: &SnapshotImage,
    fail_rename: bool,
) -> Result<PathBuf, DurabilityError> {
    write_snapshot_inner(dir, image, fail_rename)
}

fn write_snapshot_inner(
    dir: &Path,
    image: &SnapshotImage,
    fail_rename: bool,
) -> Result<PathBuf, DurabilityError> {
    let mut bytes = Vec::with_capacity(256);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&image.last_seq.to_le_bytes());
    bytes.extend_from_slice(&(image.entries.len() as u32).to_le_bytes());
    for entry in &image.entries {
        bytes.extend_from_slice(&entry.version.to_le_bytes());
        encode_community(&entry.community, &mut bytes);
    }
    bytes.extend_from_slice(&crc32(&bytes).to_le_bytes());

    let path = snapshot_path(dir, image.last_seq);
    if fail_rename {
        // Model the crash window between temp write and rename: the
        // temp file exists (and is even synced), the final name never
        // appears. Leave exactly that state behind.
        let tmp = path.with_extension("csjs.tmp.injected");
        std::fs::write(&tmp, &bytes)?;
        return Err(DurabilityError::InjectedCrash);
    }
    write_atomic(&path, &bytes)?;
    Ok(path)
}

/// Decode and verify one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<SnapshotImage, DurabilityError> {
    let corrupt = |reason: String| DurabilityError::Corrupt {
        context: format!("snapshot {}", path.display()),
        reason,
    };
    let bytes = std::fs::read(path)?;
    if bytes.len() < MAGIC.len() + 2 + 8 + 4 + 4 {
        return Err(corrupt("file shorter than header + footer".into()));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(footer.try_into().unwrap());
    let got = crc32(body);
    if expected != got {
        return Err(corrupt(format!(
            "checksum mismatch: footer {expected:#010x}, contents {got:#010x}"
        )));
    }
    let mut c = Cursor::new(body);
    if c.bytes(4).map_err(|e| corrupt(e.to_string()))? != MAGIC {
        return Err(corrupt("bad magic (not a CSJS file)".into()));
    }
    let version = c.u16().map_err(|e| corrupt(e.to_string()))?;
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let last_seq = c.u64().map_err(|e| corrupt(e.to_string()))?;
    let count = c.u32().map_err(|e| corrupt(e.to_string()))? as usize;
    let mut entries = Vec::with_capacity(count.min(Cursor::MAX_PREALLOC));
    for _ in 0..count {
        let version = c.u64().map_err(|e| corrupt(e.to_string()))?;
        let community = decode_community(&mut c).map_err(|e| corrupt(e.to_string()))?;
        entries.push(SnapshotEntry { community, version });
    }
    if !c.is_empty() {
        return Err(corrupt(format!(
            "{} spare bytes after entries",
            c.remaining()
        )));
    }
    Ok(SnapshotImage { last_seq, entries })
}

/// A snapshot file recovery skipped, and why.
#[derive(Debug)]
pub struct SkippedSnapshot {
    /// The damaged file.
    pub path: PathBuf,
    /// What was wrong with it.
    pub reason: String,
}

/// Result of a snapshot directory scan: the newest verifying snapshot
/// (if any), plus every file skipped as damaged.
pub type SnapshotScan = (Option<(PathBuf, SnapshotImage)>, Vec<SkippedSnapshot>);

/// Scan `dir` for snapshot files and return the highest-sequence one
/// that verifies, plus every file skipped as damaged. Temp droppings
/// (`*.tmp.*`) are ignored entirely — they are expected crash residue.
pub fn latest_valid_snapshot(dir: &Path) -> std::io::Result<SnapshotScan> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((None, Vec::new()));
        }
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("snapshot-") && name.ends_with(".csjs") {
            candidates.push(path);
        }
    }
    // Highest sequence first (zero-padded names sort numerically).
    candidates.sort();
    candidates.reverse();
    let mut skipped = Vec::new();
    for path in candidates {
        match read_snapshot(&path) {
            Ok(image) => return Ok((Some((path, image)), skipped)),
            Err(e) => skipped.push(SkippedSnapshot {
                path,
                reason: e.to_string(),
            }),
        }
    }
    Ok((None, skipped))
}

/// Delete snapshot files other than the `keep` highest-sequence ones.
/// Old snapshots are pure redundancy once a newer one verifies, but
/// keeping one spare means a single damaged file never strands the
/// registry.
pub fn prune_snapshots(dir: &Path, keep: usize) -> std::io::Result<usize> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("snapshot-") && name.ends_with(".csjs")
        })
        .collect();
    files.sort();
    files.reverse();
    let mut removed = 0;
    for path in files.into_iter().skip(keep) {
        std::fs::remove_file(path)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csj-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn image(last_seq: u64) -> SnapshotImage {
        SnapshotImage {
            last_seq,
            entries: vec![
                SnapshotEntry {
                    community: Community::from_rows(
                        "a",
                        2,
                        vec![(1u64, vec![1u32, 2]), (2, vec![3, 4])],
                    )
                    .unwrap(),
                    version: 5,
                },
                SnapshotEntry {
                    community: Community::new("empty", 2),
                    version: 0,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = scratch("roundtrip");
        let path = write_snapshot(&dir, &image(42)).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), image(42));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let dir = scratch("flip");
        let path = write_snapshot(&dir, &image(1)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[byte] ^= 0x01;
            std::fs::write(&path, &damaged).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "flip at byte {byte} undetected"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let dir = scratch("trunc");
        let path = write_snapshot(&dir, &image(1)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(read_snapshot(&path).is_err(), "cut at {cut} accepted");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_skips_damaged_newer_snapshots() {
        let dir = scratch("latest");
        write_snapshot(&dir, &image(5)).unwrap();
        let newer = write_snapshot(&dir, &image(9)).unwrap();
        // Damage the newer one; scan must fall back to seq 5.
        let mut bytes = std::fs::read(&newer).unwrap();
        let len = bytes.len();
        bytes[len / 2] ^= 0xFF;
        std::fs::write(&newer, &bytes).unwrap();
        let (found, skipped) = latest_valid_snapshot(&dir).unwrap();
        let (_, found) = found.unwrap();
        assert_eq!(found.last_seq, 5);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].reason.contains("checksum"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_is_no_snapshot() {
        let dir = scratch("empty");
        assert!(latest_valid_snapshot(&dir).unwrap().0.is_none());
        assert!(latest_valid_snapshot(&dir.join("missing"))
            .unwrap()
            .0
            .is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = scratch("prune");
        for seq in [1, 2, 3, 4] {
            write_snapshot(&dir, &image(seq)).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 2);
        let (found, _) = latest_valid_snapshot(&dir).unwrap();
        assert_eq!(found.unwrap().1.last_seq, 4);
        assert!(!snapshot_path(&dir, 1).exists());
        assert!(snapshot_path(&dir, 3).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
