//! Deterministic filesystem fault injection for crash-testing the
//! durability layer — the disk-side sibling of
//! `csj_engine::fault::FaultPlan`.
//!
//! Compiled only under the `fault-injection` cargo feature. A
//! [`FsFaultPlan`] makes the WAL writer tear a write at an exact byte
//! offset (what a power cut mid-`write(2)` leaves behind) and makes the
//! snapshot store fail its atomic rename (what a crash between temp
//! write and rename leaves behind). Corruption helpers ([`flip_bit`],
//! [`shear_tail`]) damage files after the fact, the way bit rot and
//! lost tail pages do.
//!
//! ```no_run
//! # use csj_durability::fault::FsFaultPlan;
//! let plan = FsFaultPlan::new().crash_after_wal_bytes(13);
//! // the next WAL append writes exactly 13 more bytes, then "crashes"
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which filesystem faults to inject. Budgets are `Arc`-shared across
/// clones, so installing a plan into a [`crate::DurableEngine`] does
/// not reset them — mirrors the engine's `FaultPlan` idiom.
#[derive(Debug, Clone, Default)]
pub struct FsFaultPlan {
    /// Remaining bytes the WAL may durably write before the injected
    /// crash; `None` = unlimited.
    wal_byte_budget: Option<Arc<AtomicU64>>,
    /// Fail the next snapshot rename (temp file is left behind, the way
    /// a crash between write and rename would leave it).
    rename_fails: Option<Arc<AtomicBool>>,
}

impl FsFaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Let the WAL write exactly `n` more bytes, then tear the write in
    /// progress: the append that exhausts the budget persists only its
    /// first remaining-budget bytes and reports
    /// [`crate::DurabilityError::InjectedCrash`]. Choosing `n` inside a
    /// frame produces a torn record; on a frame boundary, a clean
    /// prefix — both are legal crash outcomes recovery must absorb.
    pub fn crash_after_wal_bytes(mut self, n: u64) -> Self {
        self.wal_byte_budget = Some(Arc::new(AtomicU64::new(n)));
        self
    }

    /// Fail the next snapshot rename with an injected I/O error.
    pub fn fail_next_snapshot_rename(mut self) -> Self {
        self.rename_fails = Some(Arc::new(AtomicBool::new(true)));
        self
    }

    /// How many of `want` bytes the WAL may write; `None` = all of
    /// them, no budget installed. Draining the budget to (or past) zero
    /// is the injected crash.
    pub(crate) fn take_wal_budget(&self, want: usize) -> Option<usize> {
        let budget = self.wal_byte_budget.as_ref()?;
        let mut left = budget.load(Ordering::Relaxed);
        loop {
            let grant = (want as u64).min(left);
            match budget.compare_exchange_weak(
                left,
                left - grant,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(grant as usize),
                Err(now) => left = now,
            }
        }
    }

    /// Whether the pending snapshot rename should fail (one-shot).
    pub(crate) fn rename_should_fail(&self) -> bool {
        self.rename_fails
            .as_ref()
            .map(|f| f.swap(false, Ordering::Relaxed))
            .unwrap_or(false)
    }
}

/// Flip one bit of a file in place — post-hoc bit rot for recovery
/// tests.
pub fn flip_bit(path: &Path, byte: u64, bit: u8) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    f.seek(SeekFrom::Start(byte))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(byte))?;
    f.write_all(&b)?;
    Ok(())
}

/// Drop the last `n` bytes of a file — the lost tail page of a crash.
pub fn shear_tail(path: &Path, n: u64) -> std::io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len.saturating_sub(n))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_grants_everything() {
        let plan = FsFaultPlan::new();
        assert_eq!(plan.take_wal_budget(100), None);
        assert!(!plan.rename_should_fail());
    }

    #[test]
    fn byte_budget_tears_and_is_shared_across_clones() {
        let plan = FsFaultPlan::new().crash_after_wal_bytes(10);
        let installed = plan.clone();
        assert_eq!(installed.take_wal_budget(6), Some(6));
        assert_eq!(plan.take_wal_budget(6), Some(4), "clones share the budget");
        assert_eq!(installed.take_wal_budget(6), Some(0), "budget exhausted");
    }

    #[test]
    fn rename_failure_is_one_shot() {
        let plan = FsFaultPlan::new().fail_next_snapshot_rename();
        assert!(plan.rename_should_fail());
        assert!(!plan.rename_should_fail(), "second rename proceeds");
    }

    #[test]
    fn corruption_helpers_edit_in_place() {
        let dir = std::env::temp_dir().join(format!("csj-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [0u8; 8]).unwrap();
        flip_bit(&path, 3, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[3], 4);
        shear_tail(&path, 5).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
