//! Crash-consistent persistence for the CSJ registry.
//!
//! The engine ([`csj_engine::CsjEngine`]) is an in-memory structure:
//! kill the process and every registered community is gone. This crate
//! adds the durability layer underneath it:
//!
//! - **Write-ahead log** ([`wal`]): every mutation is encoded as a
//!   length-prefixed, CRC32-checksummed, monotonically sequenced frame
//!   and appended (fsynced per [`wal::FsyncPolicy`]) *before* it is
//!   applied in memory.
//! - **Checksummed snapshots** ([`snapshot`]): the full registry,
//!   written atomically (temp + fsync + rename) with a CRC32 footer;
//!   landing one truncates the WAL.
//! - **Torn-write recovery** ([`recover`]): load the newest snapshot
//!   that verifies (skipping damaged ones), replay the WAL tail, and
//!   stop cleanly at the first torn/corrupt frame with a typed
//!   [`RecoveryReport`] — never a panic, never a half-applied record.
//!
//! The invariant the whole crate is built around: **after any crash,
//! recovery yields exactly a prefix of the acked mutation sequence.**
//! An un-fsynced tail may be lost (that is what `synced: false` acks
//! mean); nothing is ever reordered, skipped, or half-applied.
//!
//! [`DurableEngine`] packages the three into a drop-in mutation
//! wrapper; [`atomic::write_atomic`] is the reusable
//! temp-fsync-rename primitive (also used by the CLI and bench
//! writers for their report files).

pub mod atomic;
mod engine;
mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod obs;
pub mod record;
pub mod recover;
pub mod snapshot;
pub mod wal;

pub use engine::{
    fingerprint_engine, DurabilityConfig, DurableAck, DurableEngine, SnapshotOutcome,
};
pub use error::DurabilityError;
pub use recover::{recover_dir, RecoveryReport, WAL_FILE};
pub use snapshot::{SnapshotEntry, SnapshotImage};
pub use wal::{AppendOutcome, FsyncPolicy, TailReason, WalReadOutcome};
