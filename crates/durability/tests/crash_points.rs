//! The crash-consistency property suite.
//!
//! The contract under test: **for any crash point, the recovered
//! registry equals the state after some prefix of the acked mutation
//! sequence** — no holes, no reordering, no half-applied record, and
//! recovery itself never panics or errors on tail damage.
//!
//! Crash points are modelled three ways: truncating the WAL at every
//! byte offset (torn write), flipping arbitrary bits (media
//! corruption), and — under `--features fault-injection` — injected
//! mid-`write` crashes and snapshot rename failures.

use std::path::{Path, PathBuf};

use csj_core::Community;
use csj_durability::record::{decode_record, encode_record, WalOp, WalRecord};
use csj_durability::{
    recover_dir, DurabilityConfig, DurableEngine, FsyncPolicy, TailReason, WAL_FILE,
};
use csj_engine::EngineConfig;
use proptest::prelude::*;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "csj-crashprop-{}-{}-{name}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path, fsync: FsyncPolicy) -> DurableEngine {
    DurableEngine::open(
        dir,
        3,
        EngineConfig::new(1),
        DurabilityConfig {
            fsync,
            keep_snapshots: 2,
        },
    )
    .expect("open durable engine")
}

/// One scripted mutation. Codes are interpreted deterministically so an
/// arbitrary `Vec<ScriptOp>` always yields a valid-but-varied workload.
#[derive(Debug, Clone)]
struct ScriptOp {
    code: u8,
    user: u64,
    vector: Vec<u32>,
}

fn script() -> impl Strategy<Value = Vec<ScriptOp>> {
    proptest::collection::vec(
        (
            proptest::num::u8::ANY,
            0u64..12,
            proptest::collection::vec(proptest::num::u32::ANY, 3),
        ),
        1..24,
    )
    .prop_map(|ops| {
        ops.into_iter()
            .map(|(code, user, vector)| ScriptOp { code, user, vector })
            .collect()
    })
}

/// Run the script through a durable engine, returning the fingerprint
/// after every *acked* mutation (index 0 = empty registry). Rejected
/// mutations (remove of an absent user, duplicate name) log nothing and
/// contribute no fingerprint — exactly mirroring what is on disk.
fn run_script(engine: &mut DurableEngine, ops: &[ScriptOp]) -> Vec<u64> {
    let mut fps = vec![engine.fingerprint()];
    for op in ops {
        let applied = match op.code % 4 {
            0 => engine
                .register(Community::new(format!("c{}", op.user), 3))
                .is_ok(),
            1 | 2 => {
                // Upsert into whichever community the code points at,
                // if any exist yet.
                let handles: Vec<_> = engine.engine().handles().collect();
                match handles.get(op.user as usize % handles.len().max(1)) {
                    Some(&h) => engine.upsert_user(h, op.user, &op.vector).is_ok(),
                    None => false,
                }
            }
            _ => {
                let handles: Vec<_> = engine.engine().handles().collect();
                match handles.first() {
                    Some(&h) => engine.remove_user(h, op.user).is_ok(),
                    None => false,
                }
            }
        };
        if applied {
            fps.push(engine.fingerprint());
        }
    }
    fps
}

fn recovered_fingerprint(dir: &Path) -> (u64, csj_durability::RecoveryReport) {
    let (engine, report) =
        recover_dir(dir, 3, EngineConfig::new(1)).expect("recovery must not fail on tail damage");
    (csj_durability::fingerprint_engine(&engine), report)
}

proptest! {
    /// WAL records round-trip through the wire form for arbitrary ops.
    #[test]
    fn wal_record_roundtrip(seq in proptest::num::u64::ANY, user in proptest::num::u64::ANY,
                            handle in proptest::num::u32::ANY,
                            vector in proptest::collection::vec(proptest::num::u32::ANY, 0..8),
                            name in "[a-zA-Z0-9_-]{1,24}", tag in 0u8..4) {
        let op = match tag {
            0 => WalOp::Register { community: Community::new(name, vector.len().max(1)) },
            1 => WalOp::UpsertUser { handle, user, vector },
            2 => WalOp::RemoveUser { handle, user },
            _ => WalOp::SnapshotMark,
        };
        let record = WalRecord { seq, op };
        let mut payload = Vec::new();
        encode_record(&record, &mut payload);
        let back = decode_record(&payload).expect("roundtrip");
        prop_assert_eq!(back, record);
    }

    /// Truncating an encoded record anywhere fails cleanly, never panics.
    #[test]
    fn wal_record_truncation_is_an_error(user in proptest::num::u64::ANY,
                                         vector in proptest::collection::vec(proptest::num::u32::ANY, 0..8)) {
        let record = WalRecord { seq: 1, op: WalOp::UpsertUser { handle: 0, user, vector } };
        let mut payload = Vec::new();
        encode_record(&record, &mut payload);
        for cut in 0..payload.len() {
            prop_assert!(decode_record(&payload[..cut]).is_err(), "cut at {}", cut);
        }
    }

    /// Corrupting a record payload never panics the decoder; if it still
    /// decodes, the WAL layer's CRC is what rejects it (exercised below).
    #[test]
    fn wal_record_bit_flip_never_panics(user in proptest::num::u64::ANY,
                                        pos in 0usize..64, bit in 0u8..8) {
        let record = WalRecord { seq: 3, op: WalOp::UpsertUser { handle: 1, user, vector: vec![1, 2, 3] } };
        let mut payload = Vec::new();
        encode_record(&record, &mut payload);
        if pos < payload.len() {
            payload[pos] ^= 1 << bit;
            let _ = decode_record(&payload); // Ok or Err, never a panic.
        }
    }

    /// THE crash-point property, torn-write edition: for a WAL sheared
    /// at any byte offset, recovery rebuilds exactly a prefix of the
    /// acked mutations.
    #[test]
    fn any_wal_truncation_recovers_an_acked_prefix(ops in script(), cut_pct in 0u64..101) {
        let dir = scratch("shear");
        let mut engine = open(&dir, FsyncPolicy::Always);
        let fps = run_script(&mut engine, &ops);
        drop(engine);

        let wal = dir.join(WAL_FILE);
        let full = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        let cut = full * cut_pct / 100;
        let f = std::fs::OpenOptions::new().write(true).open(&wal);
        if let Ok(f) = f {
            f.set_len(cut).unwrap();
        }

        let (fp, report) = recovered_fingerprint(&dir);
        let idx = fps.iter().position(|&p| p == fp);
        prop_assert!(idx.is_some(), "recovered state is not an acked prefix (cut {cut}/{full})");
        prop_assert_eq!(report.records_replayed as usize, idx.unwrap());
        // Everything below the cut is either replayed or discarded.
        prop_assert_eq!(report.wal_valid_bytes + report.bytes_discarded, cut);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// THE crash-point property, bit-rot edition: a flipped bit anywhere
    /// in the WAL still recovers a prefix (typically shorter), and the
    /// scan stops with a typed reason — never an error, never a panic.
    #[test]
    fn any_wal_bit_flip_recovers_an_acked_prefix(ops in script(), pos_pct in 0u64..100, bit in 0u8..8) {
        let dir = scratch("flip");
        let mut engine = open(&dir, FsyncPolicy::Always);
        let fps = run_script(&mut engine, &ops);
        drop(engine);

        let wal = dir.join(WAL_FILE);
        let full = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if full > 0 {
            let pos = (full * pos_pct / 100).min(full - 1);
            let mut bytes = std::fs::read(&wal).unwrap();
            bytes[pos as usize] ^= 1 << bit;
            std::fs::write(&wal, &bytes).unwrap();
        }

        let (fp, report) = recovered_fingerprint(&dir);
        let idx = fps.iter().position(|&p| p == fp);
        prop_assert!(idx.is_some(), "recovered state is not an acked prefix");
        prop_assert_eq!(report.records_replayed as usize, idx.unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshot → replay equivalence: snapshotting at an arbitrary point
    /// in the workload must not change what recovery rebuilds, and the
    /// post-snapshot WAL replay composes with the image bit-identically.
    #[test]
    fn snapshot_at_any_point_preserves_recovery(ops in script(), split_pct in 0usize..101) {
        let dir = scratch("snapeq");
        let mut engine = open(&dir, FsyncPolicy::Always);
        let split = ops.len() * split_pct / 100;
        run_script(&mut engine, &ops[..split]);
        engine.snapshot().expect("snapshot");
        run_script(&mut engine, &ops[split..]);
        let live = engine.fingerprint();
        drop(engine);

        let (fp, report) = recovered_fingerprint(&dir);
        prop_assert_eq!(fp, live, "snapshot + WAL tail != live state");
        prop_assert_eq!(report.wal_tail, TailReason::CleanEof);
        prop_assert!(report.snapshot_seq.is_some());

        // And the recovered registry keeps working: reopen read-write,
        // mutate, recover again.
        let mut reopened = open(&dir, FsyncPolicy::Always);
        reopened
            .register(Community::new("after-recovery", 3))
            .expect("recovered registry accepts new work");
        let live2 = reopened.fingerprint();
        drop(reopened);
        prop_assert_eq!(recovered_fingerprint(&dir).0, live2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Interval fsync weakens the guarantee from "every ack" to "every
/// synced ack" — but recovery must still yield a prefix, and everything
/// up to the last explicit sync must survive.
#[test]
fn interval_fsync_still_recovers_a_prefix() {
    let dir = scratch("interval");
    let mut engine = open(&dir, FsyncPolicy::Interval(4));
    let (h, _) = engine.register(Community::new("c", 3)).unwrap();
    let mut fps = vec![engine.fingerprint()];
    for user in 0..9u64 {
        engine.upsert_user(h, user, &[1, 2, 3]).unwrap();
        fps.push(engine.fingerprint());
    }
    engine.sync().unwrap();
    drop(engine);
    let (fp, report) = recovered_fingerprint(&dir);
    assert_eq!(fp, *fps.last().unwrap(), "synced tail fully recovered");
    assert_eq!(report.wal_tail, TailReason::CleanEof);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use csj_durability::fault::FsFaultPlan;
    use csj_durability::DurabilityError;

    /// Injected mid-write crash: the WAL gets a torn frame at an
    /// arbitrary byte budget; recovery yields exactly the acked prefix.
    #[test]
    fn injected_torn_write_recovers_exactly_the_acked_prefix() {
        for budget in [0u64, 1, 7, 8, 9, 20, 45, 77, 120, 300] {
            let dir = scratch(&format!("torn{budget}"));
            let mut engine = open(&dir, FsyncPolicy::Always);
            engine.inject_fs_faults(FsFaultPlan::new().crash_after_wal_bytes(budget));
            let mut fps = vec![engine.fingerprint()];
            let mut crashed = false;
            for user in 0..40u64 {
                match engine.register(Community::new(format!("c{user}"), 3)) {
                    Ok(_) => fps.push(engine.fingerprint()),
                    Err(DurabilityError::InjectedCrash) => {
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert!(crashed, "budget {budget} never tore");
            drop(engine);
            let (fp, report) = recovered_fingerprint(&dir);
            assert_eq!(
                fp,
                *fps.last().unwrap(),
                "budget {budget}: recovered state != acked prefix ({})",
                report.summary()
            );
            assert_eq!(report.records_replayed as usize, fps.len() - 1);
            // The torn tail is the partial frame the crash left; repair
            // happens on the next read-write open.
            let mut reopened = open(&dir, FsyncPolicy::Always);
            assert_eq!(reopened.fingerprint(), fp);
            reopened
                .register(Community::new("post-crash", 3))
                .expect("appends continue after tail repair");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    /// Injected snapshot rename failure: the temp file is crash residue,
    /// the WAL is untouched, recovery replays it fully, and the next
    /// snapshot attempt succeeds.
    #[test]
    fn failed_snapshot_rename_loses_nothing() {
        let dir = scratch("rename");
        let mut engine = open(&dir, FsyncPolicy::Always);
        let (h, _) = engine.register(Community::new("c", 3)).unwrap();
        engine.upsert_user(h, 1, &[1, 2, 3]).unwrap();
        let live = engine.fingerprint();
        engine.inject_fs_faults(FsFaultPlan::new().fail_next_snapshot_rename());
        let err = engine.snapshot().unwrap_err();
        assert!(matches!(err, DurabilityError::InjectedCrash));
        drop(engine);

        // No snapshot landed; the temp dropping is ignored.
        let (fp, report) = recovered_fingerprint(&dir);
        assert_eq!(fp, live);
        assert_eq!(report.snapshot_seq, None);
        assert!(report.records_replayed >= 2);

        // The registry is not stuck: reopen and snapshot for real.
        let mut engine = open(&dir, FsyncPolicy::Always);
        assert_eq!(engine.fingerprint(), live);
        let out = engine.snapshot().expect("second snapshot succeeds");
        assert!(out.path.exists());
        drop(engine);
        let (fp2, report2) = recovered_fingerprint(&dir);
        assert_eq!(fp2, live);
        assert!(report2.snapshot_seq.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The provided corruption helpers compose with recovery: flip a bit
    /// in the WAL with the injector's own tool, recover a prefix.
    #[test]
    fn injector_helpers_drive_recovery() {
        let dir = scratch("helpers");
        let mut engine = open(&dir, FsyncPolicy::Always);
        for user in 0..6u64 {
            engine
                .register(Community::new(format!("c{user}"), 3))
                .unwrap();
        }
        drop(engine);
        let wal = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal).unwrap().len();
        csj_durability::fault::shear_tail(&wal, 3).unwrap();
        csj_durability::fault::flip_bit(&wal, len / 2, 4).unwrap();
        let (_, report) = recovered_fingerprint(&dir);
        assert!(report.bytes_discarded > 0);
        assert!(report.wal_tail != TailReason::CleanEof);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
