//! Ablations of the SuperEGO machinery:
//!
//! * dimension reordering on/off (Super-EGO's key optimisation),
//! * the leaf threshold `t`,
//! * the per-dimension predicate versus the literal aggregate-L1 reading
//!   (which the paper's wording suggests but which over-counts),
//! * the hybrid MinMax–SuperEGO versus plain SuperEGO and Ex-MinMax
//!   (the Section 6.2 "combined algorithm" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use csj_core::algorithms::{ex_hybrid, ex_minmax, ex_superego};
use csj_core::CsjOptions;
use csj_data::pairs::{build_couple, BuildOptions, CouplePair, Dataset};

fn vk_pair() -> CouplePair {
    build_couple(
        csj_data::spec::couple(6),
        Dataset::VkLike,
        BuildOptions {
            scale: 64,
            seed: 21,
        },
    )
}

fn base_opts(pair: &CouplePair) -> CsjOptions {
    let mut opts = CsjOptions::new(pair.eps);
    opts.superego.max_value = Some(pair.superego_max_value);
    opts
}

fn bench_reorder(c: &mut Criterion) {
    let pair = vk_pair();
    let mut group = c.benchmark_group("ego_reorder");
    group.sample_size(15);
    for reorder in [true, false] {
        let mut opts = base_opts(&pair);
        opts.superego.reorder = reorder;
        group.bench_with_input(
            BenchmarkId::from_parameter(if reorder { "on" } else { "off" }),
            &opts,
            |bench, opts| {
                bench.iter(|| ex_superego(&pair.b, &pair.a, opts).pairs.len());
            },
        );
    }
    group.finish();
}

fn bench_leaf_threshold(c: &mut Criterion) {
    let pair = vk_pair();
    let mut group = c.benchmark_group("ego_leaf_threshold");
    group.sample_size(15);
    for t in [8usize, 32, 128, 512] {
        let mut opts = base_opts(&pair);
        opts.superego.t = t;
        group.bench_with_input(BenchmarkId::from_parameter(t), &opts, |bench, opts| {
            bench.iter(|| ex_superego(&pair.b, &pair.a, opts).pairs.len());
        });
    }
    group.finish();
}

fn bench_predicate(c: &mut Criterion) {
    let pair = vk_pair();
    let per_dim = base_opts(&pair);
    let mut l1 = per_dim.clone();
    l1.superego.l1_predicate = true;
    let per_dim_pairs = ex_superego(&pair.b, &pair.a, &per_dim).pairs.len();
    let l1_pairs = ex_superego(&pair.b, &pair.a, &l1).pairs.len();
    eprintln!(
        "[ablation_ego] per-dim predicate matches {per_dim_pairs}, aggregate-L1 matches {l1_pairs} \
         (L1 over-counts; the per-dimension reading is the faithful CSJ adaptation)"
    );
    let mut group = c.benchmark_group("ego_predicate");
    group.sample_size(15);
    group.bench_function("per_dim", |bench| {
        bench.iter(|| ex_superego(&pair.b, &pair.a, &per_dim).pairs.len());
    });
    group.bench_function("l1_aggregate", |bench| {
        bench.iter(|| ex_superego(&pair.b, &pair.a, &l1).pairs.len());
    });
    group.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    let pair = vk_pair();
    let opts = base_opts(&pair);
    let mut group = c.benchmark_group("hybrid_vs_superego");
    group.sample_size(15);
    group.bench_function("ex_superego", |bench| {
        bench.iter(|| ex_superego(&pair.b, &pair.a, &opts).pairs.len());
    });
    group.bench_function("ex_hybrid", |bench| {
        bench.iter(|| ex_hybrid(&pair.b, &pair.a, &opts).pairs.len());
    });
    group.bench_function("ex_minmax", |bench| {
        bench.iter(|| ex_minmax(&pair.b, &pair.a, &opts).pairs.len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reorder,
    bench_leaf_threshold,
    bench_predicate,
    bench_hybrid
);
criterion_main!(benches);
