//! Ablation: the `skip`/`offset` prefix pruning of the Baseline and
//! MinMax loops (Section 4.1's MAX PRUNE machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use csj_core::algorithms::{ap_baseline, ap_minmax, ex_minmax};
use csj_core::CsjOptions;
use csj_data::pairs::{build_couple, BuildOptions, Dataset};

fn bench_skip(c: &mut Criterion) {
    let pair = build_couple(
        csj_data::spec::couple(8),
        Dataset::VkLike,
        BuildOptions {
            scale: 64,
            seed: 17,
        },
    );
    let on = CsjOptions::new(pair.eps);
    let mut off = on.clone();
    off.offset_pruning = false;

    let mut group = c.benchmark_group("offset_pruning");
    group.sample_size(15);
    for (label, opts) in [("on", on), ("off", off)] {
        group.bench_with_input(
            BenchmarkId::new("ap_minmax", label),
            &opts,
            |bench, opts| bench.iter(|| ap_minmax(&pair.b, &pair.a, opts).pairs.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("ex_minmax", label),
            &opts,
            |bench, opts| bench.iter(|| ex_minmax(&pair.b, &pair.a, opts).pairs.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("ap_baseline", label),
            &opts,
            |bench, opts| bench.iter(|| ap_baseline(&pair.b, &pair.a, opts).pairs.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_skip);
criterion_main!(benches);
