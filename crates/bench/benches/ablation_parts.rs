//! Ablation: the encoding part count.
//!
//! Section 4 of the paper: "The selection of a 4-parts-segmentation
//! achieves the best tradeoff since a lower number of parts is more
//! time-costly (due to less effective pruning) and a higher number of
//! parts is more space-consuming." This bench sweeps P over
//! {1, 2, 4, 8, 13} on a VK-shaped couple and times Ap/Ex-MinMax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use csj_core::algorithms::{ap_minmax, ex_minmax};
use csj_core::CsjOptions;
use csj_data::pairs::{build_couple, BuildOptions, Dataset};

fn bench_parts(c: &mut Criterion) {
    let pair = build_couple(
        csj_data::spec::couple(3),
        Dataset::VkLike,
        BuildOptions {
            scale: 64,
            seed: 13,
        },
    );

    let mut group = c.benchmark_group("encoding_parts");
    group.sample_size(15);
    for parts in [1usize, 2, 4, 8, 13] {
        let opts = CsjOptions::new(pair.eps).with_parts(parts);
        // Report the space half of the paper's trade-off alongside time.
        let mem = csj_core::encode_a(&pair.a, pair.eps, opts.encoding).memory_bytes()
            + csj_core::encode_b(&pair.b, opts.encoding).memory_bytes();
        eprintln!(
            "[ablation_parts] P={parts}: encoded buffers use {} KiB",
            mem / 1024
        );
        group.bench_with_input(
            BenchmarkId::new("ex_minmax", parts),
            &opts,
            |bench, opts| {
                bench.iter(|| ex_minmax(&pair.b, &pair.a, opts).pairs.len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ap_minmax", parts),
            &opts,
            |bench, opts| {
                bench.iter(|| ap_minmax(&pair.b, &pair.a, opts).pairs.len());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parts);
criterion_main!(benches);
