//! Bench: prepared (pre-encoded) MinMax joins vs plain entry points —
//! quantifies what the engine's encoding cache saves per screening join.

use criterion::{criterion_group, criterion_main, Criterion};

use csj_core::algorithms::{ap_minmax, ex_minmax};
use csj_core::prepared::{ap_minmax_between, ex_minmax_between, PreparedCommunity};
use csj_core::CsjOptions;
use csj_data::pairs::{build_couple, BuildOptions, Dataset};

fn bench_prepared(c: &mut Criterion) {
    let pair = build_couple(
        csj_data::spec::couple(1),
        Dataset::VkLike,
        BuildOptions {
            scale: 64,
            seed: 23,
        },
    );
    let opts = CsjOptions::new(pair.eps);
    let pb = PreparedCommunity::new(pair.b.clone(), &opts);
    let pa = PreparedCommunity::new(pair.a.clone(), &opts);

    let mut group = c.benchmark_group("prepared_vs_plain");
    group.sample_size(20);
    group.bench_function("ap_minmax_plain", |bench| {
        bench.iter(|| ap_minmax(&pair.b, &pair.a, &opts).pairs.len());
    });
    group.bench_function("ap_minmax_prepared", |bench| {
        bench.iter(|| ap_minmax_between(&pb, &pa, &opts).pairs.len());
    });
    group.bench_function("ex_minmax_plain", |bench| {
        bench.iter(|| ex_minmax(&pair.b, &pair.a, &opts).pairs.len());
    });
    group.bench_function("ex_minmax_prepared", |bench| {
        bench.iter(|| ex_minmax_between(&pb, &pa, &opts).pairs.len());
    });
    group.finish();
}

criterion_group!(benches, bench_prepared);
criterion_main!(benches);
