//! Micro-benchmarks of the CSJ building blocks: encoding construction,
//! EGO sorting/normalisation and the candidate filters.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use csj_core::{encode_a, encode_b, vectors_match, EncodingParams};
use csj_data::vklike::{VkLikeConfig, VkLikeGenerator};
use csj_ego::{normalize_counters, PointSet};

fn vk_community(n: usize) -> csj_core::Community {
    let generator = VkLikeGenerator::new(VkLikeConfig::default());
    let (b, _) = generator.generate_pair(
        "B",
        "A",
        csj_data::Category::Sport,
        csj_data::Category::Sport,
        n,
        n + 1,
        42,
    );
    b
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    for n in [1_000usize, 10_000] {
        let community = vk_community(n);
        group.bench_with_input(BenchmarkId::new("encode_b", n), &community, |bench, com| {
            bench.iter(|| encode_b(black_box(com), EncodingParams::default()));
        });
        group.bench_with_input(BenchmarkId::new("encode_a", n), &community, |bench, com| {
            bench.iter(|| encode_a(black_box(com), 1, EncodingParams::default()));
        });
    }
    group.finish();
}

fn bench_ego_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ego_setup");
    for n in [1_000usize, 10_000] {
        let community = vk_community(n);
        let max = community.max_counter().max(1);
        group.bench_with_input(
            BenchmarkId::new("normalize", n),
            &community,
            |bench, com| {
                bench.iter(|| normalize_counters(black_box(com.raw_data()), max));
            },
        );
        let data = normalize_counters(community.raw_data(), max);
        let width = 1.0f32 / max as f32;
        group.bench_with_input(BenchmarkId::new("ego_sort", n), &data, |bench, data| {
            bench.iter(|| PointSet::build(27, width, black_box(data.clone()), None));
        });
    }
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let community = vk_community(4_000);
    let eb = encode_b(&community, EncodingParams::default());
    let ea = encode_a(&community, 1, EncodingParams::default());
    let mut group = c.benchmark_group("filters");
    group.bench_function("parts_overlap_4k_sweep", |bench| {
        bench.iter(|| {
            let mut hits = 0usize;
            for i in 0..eb.len().min(200) {
                let parts = eb.parts_of(i);
                for j in 0..ea.len().min(200) {
                    if ea.parts_overlap(j, black_box(parts)) {
                        hits += 1;
                    }
                }
            }
            hits
        });
    });
    group.bench_function("vectors_match_sweep", |bench| {
        bench.iter(|| {
            let mut hits = 0usize;
            for i in 0..community.len().min(200) {
                let v = community.vector(i);
                for j in 0..community.len().min(200) {
                    if vectors_match(black_box(v), community.vector(j), 1) {
                        hits += 1;
                    }
                }
            }
            hits
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encoding, bench_ego_setup, bench_filters
}
criterion_main!(benches);
