//! Ablation: the one-to-one matcher inside the exact methods.
//!
//! The paper's CSF is a lowest-degree-first heuristic; Hopcroft–Karp and
//! Kuhn guarantee the true maximum. This bench times all four matchers on
//! candidate graphs produced by real CSJ joins and reports (once, to
//! stderr) how many pairs each heuristic leaves on the table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use csj_core::verify::ground_truth;
use csj_data::pairs::{build_couple, BuildOptions, Dataset};
use csj_matching::{run_matcher, MatchGraph, MatcherKind};

fn candidate_graph(dataset: Dataset) -> MatchGraph {
    let pair = build_couple(
        csj_data::spec::couple(13),
        dataset,
        BuildOptions { scale: 64, seed: 3 },
    );
    let gt = ground_truth(&pair.b, &pair.a, pair.eps);
    MatchGraph::from_edges(
        pair.b.len() as u32,
        pair.a.len() as u32,
        gt.candidate_pairs.clone(),
    )
}

fn bench_matchers(c: &mut Criterion) {
    for dataset in [Dataset::VkLike, Dataset::Uniform] {
        let graph = candidate_graph(dataset);
        let optimum = run_matcher(&graph, MatcherKind::HopcroftKarp).len();
        eprintln!(
            "[ablation_matcher] {dataset}: |edges| = {}, maximum matching = {optimum}",
            graph.num_edges()
        );
        for kind in MatcherKind::ALL {
            let got = run_matcher(&graph, kind).len();
            eprintln!(
                "[ablation_matcher] {dataset}: {kind} finds {got} ({:.3}% of maximum)",
                100.0 * got as f64 / optimum.max(1) as f64
            );
        }

        let mut group = c.benchmark_group(format!("matcher_{dataset}"));
        group.sample_size(20);
        for kind in MatcherKind::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.name()),
                &kind,
                |bench, &k| {
                    bench.iter(|| run_matcher(&graph, k).len());
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
