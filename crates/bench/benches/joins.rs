//! Full-join benchmarks: all eight CSJ methods on one VK-shaped and one
//! Synthetic couple (the per-method timing columns of Tables 3–10, as a
//! Criterion suite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use csj_core::{run, CsjMethod, CsjOptions};
use csj_data::pairs::{build_couple, BuildOptions, CouplePair, Dataset};

fn couple(dataset: Dataset) -> CouplePair {
    // cID 1 (Restaurants | Food_recipes) at 1/64 of paper scale.
    build_couple(
        csj_data::spec::couple(1),
        dataset,
        BuildOptions { scale: 64, seed: 7 },
    )
}

fn options_for(pair: &CouplePair) -> CsjOptions {
    let mut opts = CsjOptions::new(pair.eps);
    opts.superego.max_value = Some(pair.superego_max_value);
    opts
}

fn bench_joins(c: &mut Criterion) {
    for dataset in [Dataset::VkLike, Dataset::Uniform] {
        let pair = couple(dataset);
        let opts = options_for(&pair);
        let mut group = c.benchmark_group(format!("join_{dataset}"));
        group.sample_size(10);
        for method in CsjMethod::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(method.name()),
                &method,
                |bench, &m| {
                    bench.iter(|| {
                        run(m, &pair.b, &pair.a, &opts)
                            .expect("valid instance")
                            .similarity
                            .matched
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
