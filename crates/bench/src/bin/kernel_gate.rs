//! `kernel_gate` — assert the quantized, cache-blocked kernel path
//! beats the scalar serial baseline on Section 6 table shapes.
//!
//! For each gate shape the exact nested-loop scan (the kernel the
//! other substrates inherit their compare primitive from) is measured
//! twice, best of N rounds: once with [`QuantMode::Off`] (the serial
//! scalar reference) and once with [`QuantMode::Auto`] (narrow-lane
//! encoding + cache-blocked tiling). Each couple runs in two flavours:
//!
//! * **wide** — the VK-shaped counters as built (u32 lanes; the win
//!   comes from tiling and bulk row bookkeeping), and
//! * **narrow** — the same rows remapped into u8 range, so the gate
//!   also exercises the narrow-lane encodings end to end.
//!
//! Before timing, every one of the eight methods is run in both modes
//! on the smallest shape and the pair lists must agree — the gate
//! refuses to certify a fast path that changes results.
//!
//! ```text
//! cargo run -p csj-bench --release --bin kernel_gate -- \
//!     [--scale N] [--rounds R] [--threshold X] [--out PATH]
//! ```
//!
//! The gate passes when the geometric-mean speedup across all shapes
//! is at least the threshold (default 1.3x) and no single shape
//! regresses below 1.0x. A `BENCH_kernel.json` report is written
//! atomically either way, so CI can archive the numbers.

use std::time::Duration;

use csj_bench::report::write_report_atomic;
use csj_core::{run, Community, CsjMethod, CsjOptions, QuantMode};
use csj_data::pairs::{build_couple, BuildOptions, Dataset};
use csj_data::COUPLES;

/// Every concrete method, for the parity sweep.
const ALL: [CsjMethod; 8] = [
    CsjMethod::ApBaseline,
    CsjMethod::ExBaseline,
    CsjMethod::ApMinMax,
    CsjMethod::ExMinMax,
    CsjMethod::ApSuperEgo,
    CsjMethod::ExSuperEgo,
    CsjMethod::ApHybrid,
    CsjMethod::ExHybrid,
];

/// Couples spanning Section 6's size spectrum (indices into COUPLES).
const GATE_COUPLES: [usize; 3] = [0, 7, 14];

/// Counters in the narrow flavour are remapped below this modulus so
/// the pair lane (with the VK eps of 1) quantizes to u8.
const NARROW_MOD: u32 = 200;

fn usage() -> ! {
    eprintln!("usage: kernel_gate [--scale N] [--rounds R] [--threshold X] [--out PATH]");
    std::process::exit(2)
}

struct Shape {
    label: String,
    b: Community,
    a: Community,
    eps: u32,
}

/// Remap every counter below `NARROW_MOD` (same ids, same order), so
/// the quantizer picks u8 lanes for the pair.
fn narrowed(c: &Community, name: &str) -> Community {
    Community::from_rows(
        name,
        c.d(),
        (0..c.len()).map(|i| {
            let row: Vec<u32> = c.vector(i).iter().map(|&v| v % NARROW_MOD).collect();
            (c.user_id(i), row)
        }),
    )
    .expect("narrowed community")
}

/// The wide (as built) and narrow (u8-range) flavours of one couple.
fn shapes(couple_idx: usize, scale: u32, seed: u64) -> [Shape; 2] {
    let spec = &COUPLES[couple_idx];
    let pair = build_couple(spec, Dataset::VkLike, BuildOptions { scale, seed });
    let narrow_b = narrowed(&pair.b, "narrow-b");
    let narrow_a = narrowed(&pair.a, "narrow-a");
    [
        Shape {
            label: format!("cid {} /{} wide", spec.cid, scale),
            b: pair.b,
            a: pair.a,
            eps: pair.eps,
        },
        Shape {
            label: format!("cid {} /{} narrow", spec.cid, scale),
            b: narrow_b,
            a: narrow_a,
            eps: pair.eps,
        },
    ]
}

fn opts(eps: u32, quant: QuantMode) -> CsjOptions {
    CsjOptions::new(eps).with_quant(quant)
}

/// Best-of-`rounds` wall-clock of the exact nested-loop scan.
fn measure(shape: &Shape, quant: QuantMode, rounds: u32) -> Duration {
    let o = opts(shape.eps, quant);
    (0..rounds)
        .map(|_| {
            run(CsjMethod::ExBaseline, &shape.b, &shape.a, &o)
                .expect("gate join")
                .timings
                .total()
        })
        .min()
        .expect("at least one round")
}

/// One gate row: both timings plus the Auto run's encoding telemetry.
struct Row {
    label: String,
    nb: usize,
    na: usize,
    d: usize,
    eps: u32,
    lane_bits: u64,
    a_tiles: u64,
    scalar: Duration,
    quant: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar.as_secs_f64() / self.quant.as_secs_f64().max(1e-9)
    }
}

fn json_report(rows: &[Row], scale: u32, rounds: u32, threshold: f64, geomean: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"kernel_gate\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"threshold\": {threshold},\n"));
    out.push_str(&format!("  \"geomean_speedup\": {geomean:.4},\n"));
    out.push_str("  \"shapes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"nb\": {}, \"na\": {}, \"d\": {}, \"eps\": {}, \
             \"lane_bits\": {}, \"a_tiles\": {}, \"scalar_us\": {}, \"quant_us\": {}, \
             \"speedup\": {:.4}}}{sep}\n",
            r.label,
            r.nb,
            r.na,
            r.d,
            r.eps,
            r.lane_bits,
            r.a_tiles,
            r.scalar.as_micros(),
            r.quant.as_micros(),
            r.speedup(),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut scale = 64u32;
    let mut rounds = 3u32;
    let mut threshold = 1.3f64;
    let mut out_path = std::path::PathBuf::from("EXPERIMENTS-data/BENCH_kernel.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage());
            }
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t > 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out_path = args.next().map(Into::into).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let seed = 0xC5A0_2024u64;

    let gate_shapes: Vec<Shape> = GATE_COUPLES
        .iter()
        .flat_map(|&i| shapes(i, scale, seed))
        .collect();

    // Parity sweep: on the smallest couple (both flavours) every method
    // must produce the same pairs with the fast path on and off.
    for flavour in shapes(GATE_COUPLES[0], scale.saturating_mul(8), seed) {
        for m in ALL {
            let off = run(
                m,
                &flavour.b,
                &flavour.a,
                &opts(flavour.eps, QuantMode::Off),
            )
            .expect("parity join (off)");
            let auto = run(
                m,
                &flavour.b,
                &flavour.a,
                &opts(flavour.eps, QuantMode::Auto),
            )
            .expect("parity join (auto)");
            if off.pairs != auto.pairs {
                eprintln!(
                    "kernel_gate: PARITY FAIL — {} on {} differs with quantization on",
                    m.name(),
                    flavour.label,
                );
                std::process::exit(1);
            }
        }
    }
    println!("kernel_gate: parity ok (8 methods x 2 flavours, off == auto)");

    // Warm-up: one pass of each mode on the first shape.
    measure(&gate_shapes[0], QuantMode::Off, 1);
    measure(&gate_shapes[0], QuantMode::Auto, 1);

    let mut rows: Vec<Row> = Vec::new();
    for s in &gate_shapes {
        let scalar = measure(s, QuantMode::Off, rounds);
        let quant = measure(s, QuantMode::Auto, rounds);
        let probe = run(
            CsjMethod::ExBaseline,
            &s.b,
            &s.a,
            &opts(s.eps, QuantMode::Auto),
        )
        .expect("telemetry probe");
        rows.push(Row {
            label: s.label.clone(),
            nb: s.b.len(),
            na: s.a.len(),
            d: s.b.d(),
            eps: s.eps,
            lane_bits: probe.telemetry.lane_bits,
            a_tiles: probe.telemetry.a_tiles,
            scalar,
            quant,
        });
    }

    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();

    let mut failed = false;
    for r in &rows {
        // Any single shape dropping below par means the fast path is a
        // pessimisation somewhere — fail even if the mean still clears.
        let verdict = if r.speedup() < 1.0 {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "kernel_gate: {} |B|={} |A|={} lane=u{} tiles={} scalar {:.3} ms, quant {:.3} ms, {:.2}x [{verdict}]",
            r.label,
            r.nb,
            r.na,
            r.lane_bits,
            r.a_tiles,
            r.scalar.as_secs_f64() * 1e3,
            r.quant.as_secs_f64() * 1e3,
            r.speedup(),
        );
    }
    if geomean < threshold {
        failed = true;
    }

    let report = json_report(&rows, scale, rounds, threshold, geomean);
    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match write_report_atomic(&out_path, &report) {
        Ok(()) => println!("kernel_gate: wrote {}", out_path.display()),
        Err(e) => eprintln!("kernel_gate: could not write {}: {e}", out_path.display()),
    }

    if failed {
        eprintln!(
            "kernel_gate: FAIL — geomean speedup {geomean:.2}x (threshold {threshold:.2}x) \
             or a shape regressed below 1.0x"
        );
        std::process::exit(1);
    }
    println!("kernel_gate: OK (geomean speedup {geomean:.2}x >= {threshold:.2}x)");
}
