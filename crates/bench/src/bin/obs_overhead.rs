//! `obs_overhead` — measure the cost of the always-on observability.
//!
//! Runs the same engine workload (screen + refine + similarity queries
//! over a generated couple) with the observability subsystem enabled
//! and disabled, best-of-N rounds each, and asserts the enabled run
//! stays within the accepted overhead envelope (5% plus a small
//! absolute floor for timer noise on sub-millisecond workloads).
//!
//! ```text
//! cargo run -p csj-bench --release --bin obs_overhead -- [--scale N] [--rounds R] [--forensics]
//! ```
//!
//! Exits non-zero when the overhead exceeds the envelope, so CI can
//! gate on it.

use std::time::{Duration, Instant};

use csj_data::pairs::{build_couple, BuildOptions, Dataset};
use csj_data::COUPLES;
use csj_engine::{CsjEngine, EngineConfig};

const QUERIES_PER_ROUND: usize = 8;

fn usage() -> ! {
    eprintln!("usage: obs_overhead [--scale N] [--rounds R] [--forensics]");
    std::process::exit(2)
}

/// One full workload pass: register the couple's communities, screen,
/// rank, and answer point similarity queries (cache hits included).
fn workload(enabled: bool, forensics: bool, scale: u32, seed: u64) -> Duration {
    let pair = build_couple(&COUPLES[0], Dataset::VkLike, BuildOptions { scale, seed });
    let mut config = EngineConfig::new(pair.eps);
    config.obs.enabled = enabled;
    if enabled && forensics {
        // Worst case for the slow-query log: a zero threshold captures
        // (and clones) every single trace.
        config.obs.slow_threshold_us = 0;
    }
    let mut engine = CsjEngine::new(pair.b.d(), config);
    let b = engine.register(pair.b).expect("register b");
    let a = engine.register(pair.a).expect("register a");

    let start = Instant::now();
    for _ in 0..QUERIES_PER_ROUND {
        engine.top_k_similar(b, 3).expect("top-k");
        engine.similarity(b, a).expect("similarity");
        engine.pairs_above(0.0).expect("sweep");
    }
    start.elapsed()
}

fn best_of(rounds: u32, enabled: bool, forensics: bool, scale: u32) -> Duration {
    (0..rounds)
        .map(|r| workload(enabled, forensics, scale, 0xC5A0_2024 ^ u64::from(r)))
        .min()
        .expect("at least one round")
}

fn main() {
    let mut scale = 64u32;
    let mut rounds = 5u32;
    let mut forensics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage());
            }
            "--forensics" => forensics = true,
            _ => usage(),
        }
    }

    // Warm up both configurations once, then interleave-measure.
    workload(false, forensics, scale, 1);
    workload(true, forensics, scale, 1);
    let off = best_of(rounds, false, forensics, scale);
    let on = best_of(rounds, true, forensics, scale);

    let ratio = on.as_secs_f64() / off.as_secs_f64().max(f64::EPSILON);
    println!(
        "obs_overhead: disabled {:.3} ms, enabled{} {:.3} ms, ratio {:.4}",
        off.as_secs_f64() * 1e3,
        if forensics { "+forensics" } else { "" },
        on.as_secs_f64() * 1e3,
        ratio
    );

    // 5% relative envelope, plus 2 ms absolute slack so timer jitter on
    // tiny scaled-down workloads cannot fail the gate spuriously.
    let limit = off.as_secs_f64() * 1.05 + 0.002;
    if on.as_secs_f64() > limit {
        eprintln!(
            "obs_overhead: FAIL — enabled run exceeds the 5% envelope ({:.3} ms > {:.3} ms)",
            on.as_secs_f64() * 1e3,
            limit * 1e3
        );
        std::process::exit(1);
    }
    println!("obs_overhead: OK (within the 5% + 2 ms envelope)");
}
