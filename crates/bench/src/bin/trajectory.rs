//! `trajectory` — the committed, append-only performance trajectory.
//!
//! Every PR that claims a perf-relevant change appends one record to
//! `EXPERIMENTS-data/BENCH_trajectory.json` (`--append LABEL`), and CI
//! re-measures and asserts the trajectory never regresses
//! (`--check`). The gated metrics are the **deterministic work
//! counters** of a fixed seeded workload — rows driven, candidates
//! streamed, matcher edges — not wall-clock: counters are identical
//! across machines, so a >10% jump is an algorithmic regression, never
//! scheduler noise. Wall-clock per join rides along as informational
//! context only.
//!
//! ```text
//! cargo run -p csj-bench --release --bin trajectory -- --check
//! cargo run -p csj-bench --release --bin trajectory -- --append pr9
//! cargo run -p csj-bench --release --bin trajectory -- --print
//! ```
//!
//! The file is an object `{"records":[…]}`; records are only ever
//! appended (atomically: tmp + rename), so `git log` on the file reads
//! as the project's perf history.

use std::path::PathBuf;
use std::time::Instant;

use csj_bench::report::write_report_atomic;
use csj_core::{run, CsjMethod, CsjOptions};
use csj_data::pairs::{build_couple, BuildOptions, Dataset};
use csj_data::COUPLES;

const DEFAULT_FILE: &str = "EXPERIMENTS-data/BENCH_trajectory.json";
const DEFAULT_SCALE: u32 = 64;
const DEFAULT_SEED: u64 = 0xC5A0_2024;

/// Metrics the regression gate enforces. All are "higher is worse"
/// work counters, deterministic for a fixed (couple, scale, seed).
const GATED: [&str; 5] = [
    "exact_rows_driven",
    "exact_candidates_streamed",
    "exact_matcher_edges",
    "approx_rows_driven",
    "approx_candidates_streamed",
];

/// Allowed growth of a gated metric between consecutive records.
const MAX_REGRESSION: f64 = 0.10;

fn usage() -> ! {
    eprintln!(
        "usage: trajectory (--check | --append LABEL | --print) \
         [--file PATH] [--scale N] [--seed S]"
    );
    std::process::exit(2)
}

/// One measured record: (key, value) pairs in a stable order.
struct Record {
    label: String,
    scale: u32,
    seed: u64,
    metrics: Vec<(&'static str, f64)>,
}

impl Record {
    fn get(&self, key: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    /// Render as one JSON object (hand-rolled: keys are static
    /// identifiers and values are finite numbers).
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"label\":\"{}\",\"scale\":{},\"seed\":{},\"metrics\":{{",
            self.label, self.scale, self.seed
        );
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("}}");
        out
    }
}

/// Run the fixed workload and collect the trajectory metrics.
fn measure(scale: u32, seed: u64) -> Record {
    let pair = build_couple(&COUPLES[0], Dataset::VkLike, BuildOptions { scale, seed });
    let opts = CsjOptions::new(pair.eps);
    let exact = run(CsjMethod::ExMinMax, &pair.b, &pair.a, &opts).expect("exact join");
    let approx = run(CsjMethod::ApMinMax, &pair.b, &pair.a, &opts).expect("approx join");
    // Wall-clock informational pass: best of 3 so the numbers are
    // readable in the committed file, but never gated.
    let best_ms = |method: CsjMethod| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                run(method, &pair.b, &pair.a, &opts).expect("timed join");
                t0.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let exact_ms = best_ms(CsjMethod::ExMinMax);
    let approx_ms = best_ms(CsjMethod::ApMinMax);
    Record {
        label: String::new(),
        scale,
        seed,
        metrics: vec![
            ("exact_rows_driven", exact.telemetry.rows_driven as f64),
            (
                "exact_candidates_streamed",
                exact.telemetry.candidates_streamed as f64,
            ),
            ("exact_matcher_edges", exact.telemetry.matcher_edges as f64),
            ("approx_rows_driven", approx.telemetry.rows_driven as f64),
            (
                "approx_candidates_streamed",
                approx.telemetry.candidates_streamed as f64,
            ),
            ("exact_matched", exact.pairs.len() as f64),
            ("approx_matched", approx.pairs.len() as f64),
            ("info_exact_ms", exact_ms),
            ("info_approx_ms", approx_ms),
        ],
    }
}

/// The last committed record's gated metrics, plus where it sits in
/// the file.
struct LastRecord {
    index: usize,
    label: String,
    metrics: Vec<(String, f64)>,
}

/// Parse the committed trajectory file into the last record's gated
/// metrics (plus the record count). Returns `None` when the file does
/// not exist yet.
fn read_last(path: &std::path::Path) -> Option<LastRecord> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("trajectory: {} is not valid JSON: {e}", path.display());
        std::process::exit(2)
    });
    let records = &v["records"];
    let mut n = 0;
    while records[n]["metrics"]["exact_rows_driven"]
        .as_f64()
        .is_some()
    {
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let last = &records[n - 1];
    let label = last["label"].as_str().unwrap_or("?").to_string();
    let mut metrics = Vec::new();
    for key in GATED {
        if let Some(val) = last["metrics"][key].as_f64() {
            metrics.push((key.to_string(), val));
        }
    }
    Some(LastRecord {
        index: n,
        label,
        metrics,
    })
}

/// Re-render every existing record verbatim (via the JSON value, so
/// the rewrite is format-stable) and return them as JSON strings.
fn existing_records(path: &std::path::Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let v: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(_) => return Vec::new(),
    };
    let mut out = Vec::new();
    let mut i = 0;
    while v["records"][i]["metrics"]["exact_rows_driven"]
        .as_f64()
        .is_some()
    {
        out.push(serde_json::to_string(&v["records"][i]).expect("re-render record"));
        i += 1;
    }
    out
}

/// Compare `current` against the last committed record; returns the
/// regression report lines (empty = clean).
fn regressions(current: &Record, last: &[(String, f64)]) -> Vec<String> {
    let mut out = Vec::new();
    for (key, old) in last {
        let Some(new) = current.get(key) else {
            continue;
        };
        if *old > 0.0 && new > old * (1.0 + MAX_REGRESSION) {
            out.push(format!(
                "{key}: {old:.0} -> {new:.0} (+{:.1}%, limit +{:.0}%)",
                (new / old - 1.0) * 100.0,
                MAX_REGRESSION * 100.0
            ));
        }
    }
    out
}

fn main() {
    let mut file = PathBuf::from(DEFAULT_FILE);
    let mut scale = DEFAULT_SCALE;
    let mut seed = DEFAULT_SEED;
    let mut check = false;
    let mut print = false;
    let mut append: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--print" => print = true,
            "--append" => append = Some(args.next().unwrap_or_else(|| usage())),
            "--file" => file = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if !check && !print && append.is_none() {
        usage();
    }

    let mut current = measure(scale, seed);
    println!("trajectory: measured couple[0] at scale {scale} seed {seed}:");
    for (k, v) in &current.metrics {
        println!("  {k} = {v}");
    }
    if print {
        return;
    }

    if let Some(last) = read_last(&file) {
        let (n, label) = (last.index, &last.label);
        let bad = regressions(&current, &last.metrics);
        if bad.is_empty() {
            println!(
                "trajectory: no gated metric regressed >{:.0}% vs record #{n} ({label})",
                MAX_REGRESSION * 100.0
            );
        } else {
            eprintln!("trajectory: FAIL — regression vs record #{n} ({label}):");
            for line in &bad {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    } else {
        println!(
            "trajectory: {} has no records yet; nothing to gate against",
            file.display()
        );
    }

    if let Some(label) = append {
        current.label = label;
        let mut records = existing_records(&file);
        records.push(current.to_json());
        let body = format!("{{\"records\":[\n{}\n]}}\n", records.join(",\n"));
        write_report_atomic(&file, &body).unwrap_or_else(|e| {
            eprintln!("trajectory: cannot write {}: {e}", file.display());
            std::process::exit(2)
        });
        println!(
            "trajectory: appended record #{} ({}) to {}",
            records.len(),
            current.label,
            file.display()
        );
    }
}
