//! `soak` — randomized differential testing harness.
//!
//! Generates random CSJ instances (both skewed and uniform regimes, a
//! sweep of dimensionalities and epsilons) and cross-checks every method
//! against brute-force ground truth and against each other, round after
//! round. Violations abort with a reproduction seed.
//!
//! ```text
//! cargo run -p csj-bench --release --bin soak -- [rounds] [base-seed]
//! ```

use csj_core::verify::ground_truth;
use csj_core::{run, Community, CsjMethod, CsjOptions, MatcherKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_community(rng: &mut StdRng, name: &str, n: usize, d: usize, range: u32) -> Community {
    Community::from_rows(
        name,
        d,
        (0..n).map(|i| {
            let v: Vec<u32> = (0..d).map(|_| rng.gen_range(0..=range)).collect();
            (i as u64, v)
        }),
    )
    .expect("well-formed rows")
}

fn check_round(seed: u64) -> Result<RoundStats, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = rng.gen_range(1..=8);
    let eps = rng.gen_range(0..=4u32);
    let range = rng.gen_range(1..=40u32);
    let nb = rng.gen_range(1..=60usize);
    let na = rng.gen_range(nb..=2 * nb);
    let b = random_community(&mut rng, "B", nb, d, range);
    let a = random_community(&mut rng, "A", na, d, range);

    let gt = ground_truth(&b, &a, eps);
    let maximum = gt.similarity.matched;
    let mut stats = RoundStats { joins: 0, maximum };

    for matcher in [MatcherKind::Csf, MatcherKind::HopcroftKarp] {
        let opts = CsjOptions::new(eps)
            .with_parts(rng.gen_range(1..=d))
            .with_matcher(matcher);
        for method in CsjMethod::ALL {
            let out = run(method, &b, &a, &opts)
                .map_err(|e| format!("seed {seed}: {method} rejected valid instance: {e}"))?;
            stats.joins += 1;
            let matched = out.similarity.matched;
            if matched > maximum {
                return Err(format!(
                    "seed {seed}: {method}/{matcher} found {matched} > maximum {maximum}"
                ));
            }
            // Integer-domain exactness guarantees.
            let integer_exact = matches!(
                method,
                CsjMethod::ExBaseline | CsjMethod::ExMinMax | CsjMethod::ExHybrid
            );
            if integer_exact && matcher == MatcherKind::HopcroftKarp && matched != maximum {
                return Err(format!(
                    "seed {seed}: {method} with Hopcroft-Karp found {matched}, maximum is {maximum}"
                ));
            }
            // Every integer-domain matching must be one-to-one over true
            // pairs.
            if !matches!(method, CsjMethod::ApSuperEgo | CsjMethod::ExSuperEgo) {
                let mut seen_b = vec![false; b.len()];
                let mut seen_a = vec![false; a.len()];
                for &(x, y) in &out.pairs {
                    if !csj_core::vectors_match(b.vector(x as usize), a.vector(y as usize), eps) {
                        return Err(format!("seed {seed}: {method} reported a false pair"));
                    }
                    if std::mem::replace(&mut seen_b[x as usize], true)
                        || std::mem::replace(&mut seen_a[y as usize], true)
                    {
                        return Err(format!("seed {seed}: {method} reused a user"));
                    }
                }
            }
        }
    }
    Ok(stats)
}

struct RoundStats {
    joins: u64,
    maximum: usize,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rounds: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(200);
    let base_seed: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(0x50AC);

    let started = std::time::Instant::now();
    let mut joins = 0u64;
    let mut nonzero = 0u64;
    for round in 0..rounds {
        match check_round(base_seed.wrapping_add(round)) {
            Ok(stats) => {
                joins += stats.joins;
                nonzero += (stats.maximum > 0) as u64;
            }
            Err(msg) => {
                eprintln!("SOAK FAILURE: {msg}");
                std::process::exit(1);
            }
        }
        if (round + 1) % 50 == 0 {
            eprintln!(
                "[soak] {} rounds, {} joins, no violations",
                round + 1,
                joins
            );
        }
    }
    println!(
        "soak passed: {rounds} rounds, {joins} joins, {nonzero} rounds with non-empty matchings, {:.1} s",
        started.elapsed().as_secs_f64()
    );
}
