//! `plan_gate` — assert the cost-based planner picks near-optimal
//! methods on the paper's Section 6 couple shapes.
//!
//! For each gate shape the four exact methods are measured (best of N
//! rounds), a cost table is fitted from those measurements
//! ([`csj_core::plan::fit`]) and the planner resolves `Auto` for the
//! shape. The gate passes when the planner's pick costs at most 1.10x
//! the best fixed method (plus a small absolute floor for timer noise
//! on scaled-down workloads) on *every* shape.
//!
//! ```text
//! cargo run -p csj-bench --release --bin plan_gate -- [--scale N] [--rounds R]
//! ```
//!
//! Exits non-zero when the planner misses the envelope on any shape,
//! so CI can gate on it.

use std::time::Duration;

use csj_core::plan::{fit, CostSample, CostTable, Exactness, PlanInput};
use csj_core::{run, CsjMethod, CsjOptions};
use csj_data::pairs::{build_couple, BuildOptions, CouplePair, Dataset};
use csj_data::COUPLES;

/// The candidate pool the gate ranks: every exact method.
const EXACT: [CsjMethod; 4] = [
    CsjMethod::ExBaseline,
    CsjMethod::ExMinMax,
    CsjMethod::ExSuperEgo,
    CsjMethod::ExHybrid,
];

/// Couples spanning Section 6's size spectrum (indices into COUPLES).
const GATE_COUPLES: [usize; 3] = [0, 7, 14];

fn usage() -> ! {
    eprintln!("usage: plan_gate [--scale N] [--rounds R]");
    std::process::exit(2)
}

struct Shape {
    label: String,
    pair: CouplePair,
    input: PlanInput,
}

fn shape(couple_idx: usize, scale: u32, seed: u64) -> Shape {
    let spec = &COUPLES[couple_idx];
    let pair = build_couple(spec, Dataset::VkLike, BuildOptions { scale, seed });
    let input = PlanInput::new(
        pair.b.len(),
        pair.a.len(),
        pair.b.d(),
        pair.eps,
        Exactness::Exact,
    );
    Shape {
        label: format!("cid {} /{}", spec.cid, scale),
        pair,
        input,
    }
}

/// Best-of-`rounds` wall-clock of one exact method on one shape.
fn measure(shape: &Shape, method: CsjMethod, rounds: u32) -> Duration {
    let opts = CsjOptions::new(shape.pair.eps);
    (0..rounds)
        .map(|_| {
            run(method, &shape.pair.b, &shape.pair.a, &opts)
                .expect("gate join")
                .timings
                .total()
        })
        .min()
        .expect("at least one round")
}

fn main() {
    let mut scale = 64u32;
    let mut rounds = 3u32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let seed = 0xC5A0_2024u64;

    // Gate shapes plus extra small-instance calibration shapes, so the
    // fit sees both sides of the crossover.
    let gate_shapes: Vec<Shape> = GATE_COUPLES
        .iter()
        .map(|&i| shape(i, scale, seed))
        .collect();
    let calib_shapes: Vec<Shape> = GATE_COUPLES
        .iter()
        .map(|&i| shape(i, scale.saturating_mul(8), seed))
        .collect();

    // Warm-up: one pass of every method on the smallest shape.
    for &m in &EXACT {
        measure(&calib_shapes[0], m, 1);
    }

    // Measure every (shape, method) once, best of `rounds`; the same
    // measurements feed the fit and the gate.
    let mut samples: Vec<CostSample> = Vec::new();
    let mut gate_times: Vec<Vec<(CsjMethod, Duration)>> = Vec::new();
    for (shapes, is_gate) in [(&calib_shapes, false), (&gate_shapes, true)] {
        for s in shapes.iter() {
            let mut per_method = Vec::new();
            for &m in &EXACT {
                let best = measure(s, m, rounds);
                samples.push(CostSample {
                    method: m,
                    input: s.input,
                    actual_us: (best.as_secs_f64() * 1e6).max(1.0),
                });
                per_method.push((m, best));
            }
            if is_gate {
                gate_times.push(per_method);
            }
        }
    }
    let table = fit(&samples, &CostTable::seeded());

    let mut failed = false;
    for (s, per_method) in gate_shapes.iter().zip(&gate_times) {
        let chosen = table.plan(&s.input).chosen;
        let auto_time = per_method
            .iter()
            .find(|(m, _)| *m == chosen)
            .expect("planner picks an exact method under Exactness::Exact")
            .1;
        let (best_method, best_time) = per_method
            .iter()
            .min_by_key(|(_, t)| *t)
            .copied()
            .expect("non-empty pool");
        // 10% relative envelope plus 2 ms absolute slack for timer
        // jitter on tiny scaled-down shapes.
        let limit = best_time.as_secs_f64() * 1.10 + 0.002;
        let verdict = if auto_time.as_secs_f64() > limit {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "plan_gate: {} |B|={} |A|={} -> auto={} {:.3} ms, best={} {:.3} ms [{verdict}]",
            s.label,
            s.input.nb,
            s.input.na,
            chosen.name(),
            auto_time.as_secs_f64() * 1e3,
            best_method.name(),
            best_time.as_secs_f64() * 1e3,
        );
    }

    if failed {
        eprintln!("plan_gate: FAIL — the planner missed the 1.10x + 2 ms envelope");
        std::process::exit(1);
    }
    println!("plan_gate: OK (Auto within 1.10x of the best fixed exact method on every shape)");
}
