//! `tables` — regenerate the paper's evaluation tables.
//!
//! ```text
//! cargo run -p csj-bench --release --bin tables -- all --scale 32
//! cargo run -p csj-bench --release --bin tables -- table4 table8
//! ```
//!
//! Writes Markdown and JSON per table under `EXPERIMENTS-data/` (created
//! next to the current directory) and prints the Markdown to stdout.

use std::path::PathBuf;

use csj_bench::runner::RunConfig;
use csj_bench::tables;

fn usage() -> ! {
    eprintln!(
        "usage: tables [--scale N] [--seed S] [--out DIR] <table1|table2|...|table11|all>..."
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = RunConfig::default();
    let mut out_dir = PathBuf::from("EXPERIMENTS-data");
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                cfg.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if cfg.scale == 0 {
                    usage();
                }
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out_dir = args.next().map(PathBuf::from).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            name => wanted.push(name.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = (1..=11).map(|i| format!("table{i}")).collect();
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");

    for name in &wanted {
        let started = std::time::Instant::now();
        eprintln!(
            "[tables] running {name} (scale 1/{}, seed {:#x})...",
            cfg.scale, cfg.seed
        );
        let (markdown, json) = match name.as_str() {
            "table1" => (tables::table1(cfg), None),
            "table2" => (tables::table2(), None),
            "table11" => {
                let report = tables::table11(cfg);
                (report.to_markdown(), Some(report.to_json()))
            }
            "crossover" => {
                let report = tables::crossover(cfg);
                (report.to_markdown(), Some(report.to_json()))
            }
            "dsweep" => {
                let report = tables::dsweep(cfg);
                (report.to_markdown(), Some(report.to_json()))
            }
            "epsweep" => {
                let report = tables::epsweep(cfg);
                (report.to_markdown(), Some(report.to_json()))
            }
            other => {
                let number: u8 = other
                    .strip_prefix("table")
                    .and_then(|n| n.parse().ok())
                    .filter(|n| (3..=10).contains(n))
                    .unwrap_or_else(|| usage());
                let report = tables::couple_table(number, cfg);
                (report.to_markdown(), Some(report.to_json()))
            }
        };
        println!("{markdown}");
        // Atomic writes: a run killed mid-write leaves the previous
        // report intact, never a torn artifact.
        let md_path = out_dir.join(format!("{name}.md"));
        csj_bench::report::write_report_atomic(&md_path, &markdown).expect("write markdown report");
        if let Some(json) = json {
            let json_path = out_dir.join(format!("{name}.json"));
            csj_bench::report::write_report_atomic(&json_path, &json).expect("write json report");
        }
        eprintln!(
            "[tables] {name} done in {:.1} s -> {}",
            started.elapsed().as_secs_f64(),
            md_path.display()
        );
    }

    write_index(&out_dir);
    write_bench_profile(&out_dir, &cfg);
}

/// Dump the harness's accumulated per-method join-latency metrics as a
/// `BENCH_<unix-timestamp>.json` artifact next to the tables.
fn write_bench_profile(out_dir: &std::path::Path, cfg: &RunConfig) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let path = out_dir.join(format!("BENCH_{ts}.json"));
    let body = format!(
        "{{\"scale\":{},\"seed\":{},\"profile\":{}}}\n",
        cfg.scale,
        cfg.seed,
        csj_bench::runner::bench_obs().snapshot().to_json()
    );
    match csj_bench::report::write_report_atomic(&path, &body) {
        Ok(()) => eprintln!("[tables] wrote join-latency profile {}", path.display()),
        Err(e) => eprintln!("[tables] could not write {}: {e}", path.display()),
    }
}

/// Refresh `index.md`: one line per report present in the output dir.
fn write_index(out_dir: &std::path::Path) {
    let mut names: Vec<String> = std::fs::read_dir(out_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.ends_with(".md") && n != "index.md")
                .collect()
        })
        .unwrap_or_default();
    names.sort_by_key(|n| {
        // table2 before table10; extensions after the paper tables.
        let stem = n.trim_end_matches(".md");
        match stem
            .strip_prefix("table")
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(k) => (0, k, stem.to_string()),
            None => (1, 0, stem.to_string()),
        }
    });
    let mut index = String::from(concat!(
        "# EXPERIMENTS-data index\n\n",
        "Generated by `cargo run -p csj-bench --release --bin tables`.\n",
        "Tables 1-11 reproduce the paper; `crossover`, `dsweep` and `epsweep` are\n",
        "extension experiments (see EXPERIMENTS.md).\n\n",
    ));
    for n in names {
        index.push_str(&format!(
            "- [{}]({})
",
            n.trim_end_matches(".md"),
            n
        ));
    }
    let _ = csj_bench::report::write_report_atomic(&out_dir.join("index.md"), &index);
}
