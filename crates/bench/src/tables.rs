//! One reproduction function per table of the paper.

use csj_core::CsjMethod;
use csj_data::pairs::{build_couple, Dataset};
use csj_data::spec::{
    self, CoupleRow, ScalabilityRow, COUPLES, SCALABILITY, SYNTHETIC_TOTAL_LIKES, VK_TOTAL_LIKES,
};
use csj_data::stats::{combined_dimension_totals, rank_categories, rank_correlation};
use csj_data::vklike::{VkLikeConfig, VkLikeGenerator};
use csj_data::Category;

use crate::report::{ComparisonCell, ComparisonRow, TableReport};
use crate::runner::{measure, RunConfig};

/// Which couple block and method family a table covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableKind {
    pub dataset: Dataset,
    /// Couples 1–10 (`false`) or 11–20 (`true`).
    pub same_category: bool,
    /// Approximate (`false`) or exact (`true`) methods.
    pub exact: bool,
}

/// Table number -> kind, for Tables 3–10.
pub fn table_kind(number: u8) -> TableKind {
    match number {
        3 => TableKind {
            dataset: Dataset::VkLike,
            same_category: false,
            exact: false,
        },
        4 => TableKind {
            dataset: Dataset::VkLike,
            same_category: false,
            exact: true,
        },
        5 => TableKind {
            dataset: Dataset::VkLike,
            same_category: true,
            exact: false,
        },
        6 => TableKind {
            dataset: Dataset::VkLike,
            same_category: true,
            exact: true,
        },
        7 => TableKind {
            dataset: Dataset::Uniform,
            same_category: false,
            exact: false,
        },
        8 => TableKind {
            dataset: Dataset::Uniform,
            same_category: false,
            exact: true,
        },
        9 => TableKind {
            dataset: Dataset::Uniform,
            same_category: true,
            exact: false,
        },
        10 => TableKind {
            dataset: Dataset::Uniform,
            same_category: true,
            exact: true,
        },
        other => panic!("table {other} is not a couple table (use 3..=10)"),
    }
}

fn methods_for(exact: bool) -> [CsjMethod; 3] {
    if exact {
        [
            CsjMethod::ExBaseline,
            CsjMethod::ExMinMax,
            CsjMethod::ExSuperEgo,
        ]
    } else {
        [
            CsjMethod::ApBaseline,
            CsjMethod::ApMinMax,
            CsjMethod::ApSuperEgo,
        ]
    }
}

fn paper_cells(row: &CoupleRow, exact: bool) -> [(String, f64, f64); 3] {
    let pick = |c: &spec::MethodCell, name: &str| (name.to_string(), c.similarity_pct, c.seconds);
    if exact {
        [
            pick(&row.ex_baseline, "ex-baseline"),
            pick(&row.ex_minmax, "ex-minmax"),
            pick(&row.ex_superego, "ex-superego"),
        ]
    } else {
        [
            pick(&row.ap_baseline, "ap-baseline"),
            pick(&row.ap_minmax, "ap-minmax"),
            pick(&row.ap_superego, "ap-superego"),
        ]
    }
}

/// Reproduce one of Tables 3–10.
pub fn couple_table(number: u8, cfg: RunConfig) -> TableReport {
    let kind = table_kind(number);
    let couples: Vec<_> = COUPLES
        .iter()
        .filter(|c| c.same_category() == kind.same_category)
        .collect();
    let methods = methods_for(kind.exact);

    // Couples are independent: run them on a small thread pool.
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let rows: Vec<ComparisonRow> = run_parallel(threads, &couples, |spec| {
        let pair = build_couple(spec, kind.dataset, cfg.build_options());
        let paper_row = match kind.dataset {
            Dataset::VkLike => spec::vk_row(spec.cid),
            Dataset::Uniform => spec::synthetic_row(spec.cid),
        };
        let paper = paper_cells(paper_row, kind.exact);
        let cells = methods
            .iter()
            .zip(paper.iter())
            .map(|(&m, (name, psim, psec))| {
                debug_assert_eq!(m.name(), name);
                let measured = measure(&pair, m);
                ComparisonCell {
                    method: name.clone(),
                    paper_similarity_pct: *psim,
                    paper_seconds: *psec,
                    measured_similarity_pct: measured.similarity_pct,
                    measured_seconds: measured.seconds,
                }
            })
            .collect();
        ComparisonRow {
            cid: spec.cid,
            label: format!("{} / {}", spec.cat_b.name(), spec.cat_a.name()),
            b_size: pair.b.len(),
            a_size: pair.a.len(),
            cells,
        }
    });

    let family = if kind.exact { "Exact" } else { "Approximate" };
    let band = if kind.same_category {
        "same categories, similarity >= 30%"
    } else {
        "different categories, similarity >= 15%"
    };
    TableReport {
        id: format!("table{number}"),
        title: format!(
            "{family} methods on {} dataset, eps = {}, {band}",
            kind.dataset, kind.dataset.eps(),
        ),
        scale: cfg.scale,
        seed: cfg.seed,
        rows,
        notes: vec![
            format!(
                "community sizes are the paper's divided by {}; absolute seconds are not comparable to the paper's (different hardware, language and scale) — the similarity columns and the relative method ordering are.",
                cfg.scale
            ),
        ],
    }
}

/// Reproduce Table 1: per-category totals ranking of the generated
/// corpora versus the published ranking.
pub fn table1(cfg: RunConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## table1 — per-category total_likes ranking (generated vs paper)\n"
    );
    for dataset in [Dataset::VkLike, Dataset::Uniform] {
        // Union of a few couples is a representative corpus sample.
        let mut totals = vec![0u64; 27];
        for spec in COUPLES.iter().step_by(4) {
            let pair = build_couple(spec, dataset, cfg.build_options());
            let t = combined_dimension_totals([&pair.b, &pair.a], 27);
            for (acc, v) in totals.iter_mut().zip(t) {
                *acc += v;
            }
        }
        let ours = rank_categories(&totals);
        let paper: Vec<(Category, u64)> = match dataset {
            Dataset::VkLike => VK_TOTAL_LIKES.to_vec(),
            Dataset::Uniform => SYNTHETIC_TOTAL_LIKES.to_vec(),
        };
        let rho = rank_correlation(&ours, &paper);
        let _ = writeln!(
            out,
            "### {dataset} (Spearman rank correlation vs paper: {rho:.3})\n"
        );
        let _ = writeln!(
            out,
            "| rank | paper category | paper total | our category | our total |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|");
        for (i, (p, o)) in paper.iter().zip(ours.iter()).enumerate() {
            let _ = writeln!(out, "| {} | {} | {} | {} | {} |", i + 1, p.0, p.1, o.0, o.1);
        }
        let _ = writeln!(out);
    }
    out.push_str(
        "> The uniform Synthetic corpus has near-equal totals by construction, so its ranking is \
         noise — matching the paper, whose Synthetic totals differ by < 25% across ranks.\n",
    );
    out
}

/// Reproduce Table 2: the couple metadata.
pub fn table2() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## table2 — the 20 compared community couples (paper metadata)\n"
    );
    let _ = writeln!(
        out,
        "| cID | name_B | id_B | name_A | id_A | categories | size_B | size_A |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for c in &COUPLES {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} \\| {} | {} | {} |",
            c.cid, c.name_b, c.id_b, c.name_a, c.id_a, c.cat_b, c.cat_a, c.size_b, c.size_a
        );
    }
    out
}

/// Reproduce Table 11: Ex-MinMax scalability, 20 categories x 4 sizes.
pub fn table11(cfg: RunConfig) -> TableReport {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let rows_in: Vec<&ScalabilityRow> = SCALABILITY.iter().collect();
    let rows: Vec<ComparisonRow> = run_parallel(threads, &rows_in, |row| {
        let cells = row
            .points
            .iter()
            .map(|&(avg_size, paper_seconds)| {
                let scaled = (avg_size / cfg.scale).max(40);
                // A couple with the published *average* size: B slightly
                // smaller, A slightly larger (satisfies the constraint).
                let nb = (scaled as f64 * 0.93) as usize;
                let na = (scaled as f64 * 1.07) as usize;
                let generator = VkLikeGenerator::new(VkLikeConfig {
                    target_similarity: 0.25,
                    ..VkLikeConfig::default()
                });
                let seed = cfg.seed ^ ((row.category.dim() as u64) << 40) ^ avg_size as u64;
                let (b, a) =
                    generator.generate_pair("B", "A", row.category, row.category, nb, na, seed);
                let opts = csj_core::CsjOptions::new(1);
                let start = std::time::Instant::now();
                let raw = csj_core::algorithms::ex_minmax(&b, &a, &opts);
                let seconds = start.elapsed().as_secs_f64();
                ComparisonCell {
                    method: format!("ex-minmax @ {avg_size}"),
                    paper_similarity_pct: f64::NAN, // Table 11 reports time only
                    paper_seconds,
                    measured_similarity_pct: raw.pairs.len() as f64 / nb as f64 * 100.0,
                    measured_seconds: seconds,
                }
            })
            .collect();
        ComparisonRow {
            cid: 0,
            label: row.category.name().to_string(),
            b_size: 0,
            a_size: 0,
            cells,
        }
    });
    TableReport {
        id: "table11".into(),
        title: "Ex-MinMax scalability on VK-like data (paper's Table 11 grid)".into(),
        scale: cfg.scale,
        seed: cfg.seed,
        rows,
        notes: vec![
            "each cell joins a couple whose average size is the paper's divided by the scale factor; paper similarity is not published for this table (NaN).".into(),
        ],
    }
}

/// Extension experiment (not a paper table): time-vs-size series for the
/// three exact methods on one VK-like couple shape, to locate the
/// Ex-MinMax / Ex-SuperEGO crossover that the paper's full-scale runs
/// sit on one side of (see EXPERIMENTS.md, Tables 3–6 deviations).
pub fn crossover(cfg: RunConfig) -> TableReport {
    let sizes: Vec<u32> = [4_000u32, 8_000, 16_000, 32_000]
        .iter()
        .map(|&s| s / cfg.scale.clamp(1, 8))
        .collect();
    let methods = [
        CsjMethod::ExBaseline,
        CsjMethod::ExMinMax,
        CsjMethod::ExSuperEgo,
    ];
    let rows: Vec<ComparisonRow> = sizes
        .iter()
        .map(|&nb| {
            let na = nb + nb / 10;
            let generator = VkLikeGenerator::new(VkLikeConfig {
                target_similarity: 0.20,
                ..VkLikeConfig::default()
            });
            let (b, a) = generator.generate_pair(
                "B",
                "A",
                Category::Sport,
                Category::Sport,
                nb as usize,
                na as usize,
                cfg.seed ^ nb as u64,
            );
            let opts = csj_core::CsjOptions::new(1);
            let cells = methods
                .iter()
                .map(|&m| {
                    let start = std::time::Instant::now();
                    let out = csj_core::run(m, &b, &a, &opts).expect("valid instance");
                    ComparisonCell {
                        method: m.name().to_string(),
                        paper_similarity_pct: f64::NAN,
                        paper_seconds: f64::NAN,
                        measured_similarity_pct: out.similarity.percent(),
                        measured_seconds: start.elapsed().as_secs_f64(),
                    }
                })
                .collect();
            ComparisonRow {
                cid: 0,
                label: format!("|B| = {nb}"),
                b_size: nb as usize,
                a_size: na as usize,
                cells,
            }
        })
        .collect();
    TableReport {
        id: "crossover".into(),
        title: "extension: exact-method runtime vs community size (VK-like data)".into(),
        scale: cfg.scale,
        seed: cfg.seed,
        rows,
        notes: vec![
            "not a paper table — locates where Ex-SuperEGO's asymptotics overtake Ex-MinMax's on skewed data; paper columns are NaN.".into(),
        ],
    }
}

/// Extension experiment: method runtimes across dimensionalities
/// (epsilon-join literature typically evaluates d in 2..32; the paper
/// fixes d = 27). VK-like data, fixed sizes, d in {4, 8, 16, 27, 54}.
pub fn dsweep(cfg: RunConfig) -> TableReport {
    let dims = [4usize, 8, 16, 27, 54];
    let methods = [
        CsjMethod::ExBaseline,
        CsjMethod::ExMinMax,
        CsjMethod::ExSuperEgo,
    ];
    let nb = (6_000 / cfg.scale.clamp(1, 8).max(1)) as usize * 8; // ~6k at default
    let rows: Vec<ComparisonRow> = dims
        .iter()
        .map(|&d| {
            let generator = VkLikeGenerator::new(VkLikeConfig {
                d,
                target_similarity: 0.20,
                ..VkLikeConfig::default()
            });
            let (b, a) = generator.generate_pair(
                "B",
                "A",
                Category::Sport,
                Category::Hobbies,
                nb,
                nb + nb / 10,
                cfg.seed ^ (d as u64) << 8,
            );
            let opts = csj_core::CsjOptions::new(1);
            let cells = methods
                .iter()
                .map(|&m| {
                    let start = std::time::Instant::now();
                    let out = csj_core::run(m, &b, &a, &opts).expect("valid instance");
                    ComparisonCell {
                        method: m.name().to_string(),
                        paper_similarity_pct: f64::NAN,
                        paper_seconds: f64::NAN,
                        measured_similarity_pct: out.similarity.percent(),
                        measured_seconds: start.elapsed().as_secs_f64(),
                    }
                })
                .collect();
            ComparisonRow {
                cid: 0,
                label: format!("d = {d}"),
                b_size: nb,
                a_size: nb + nb / 10,
                cells,
            }
        })
        .collect();
    TableReport {
        id: "dsweep".into(),
        title: "extension: exact-method runtime vs dimensionality (VK-like data)".into(),
        scale: cfg.scale,
        seed: cfg.seed,
        rows,
        notes: vec![
            "not a paper table — the paper fixes d = 27; this sweep shows how the encoding and EGO costs scale with d (paper columns are NaN).".into(),
        ],
    }
}

/// Extension experiment: similarity and runtime vs epsilon. The paper
/// argues CSJ must use "as minimum as possible" an epsilon to *really*
/// find similar profiles — this sweep quantifies how fast similarity
/// inflates (and pruning degrades) as eps grows on VK-like data.
pub fn epsweep(cfg: RunConfig) -> TableReport {
    let eps_values = [0u32, 1, 2, 4, 8, 16];
    let methods = [
        CsjMethod::ApMinMax,
        CsjMethod::ExMinMax,
        CsjMethod::ExSuperEgo,
    ];
    let generator = VkLikeGenerator::new(VkLikeConfig {
        target_similarity: 0.20,
        ..VkLikeConfig::default()
    });
    let nb = 5_000usize;
    let (b, a) = generator.generate_pair(
        "B",
        "A",
        Category::FoodRecipes,
        Category::Restaurants,
        nb,
        nb + nb / 10,
        cfg.seed ^ 0xE95,
    );
    let rows: Vec<ComparisonRow> = eps_values
        .iter()
        .map(|&eps| {
            let opts = csj_core::CsjOptions::new(eps);
            let cells = methods
                .iter()
                .map(|&m| {
                    let start = std::time::Instant::now();
                    let out = csj_core::run(m, &b, &a, &opts).expect("valid instance");
                    ComparisonCell {
                        method: m.name().to_string(),
                        paper_similarity_pct: f64::NAN,
                        paper_seconds: f64::NAN,
                        measured_similarity_pct: out.similarity.percent(),
                        measured_seconds: start.elapsed().as_secs_f64(),
                    }
                })
                .collect();
            ComparisonRow {
                cid: 0,
                label: format!("eps = {eps}"),
                b_size: b.len(),
                a_size: a.len(),
                cells,
            }
        })
        .collect();
    TableReport {
        id: "epsweep".into(),
        title: "extension: similarity and runtime vs epsilon (VK-like data, planted at eps = 1)".into(),
        scale: cfg.scale,
        seed: cfg.seed,
        rows,
        notes: vec![
            "not a paper table — supports the paper's 'minimum eps' argument: the couple is planted at 20% for eps = 1; everything above that similarity at larger eps is accidental-match inflation (paper columns are NaN).".into(),
        ],
    }
}

/// Run `f` over `items` on `threads` workers, preserving order.
fn run_parallel<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let results_mutex = parking_lot::Mutex::new(&mut results);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results_mutex.lock()[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RunConfig {
        RunConfig {
            scale: 2048,
            seed: 11,
        }
    }

    #[test]
    fn table_kind_mapping() {
        assert_eq!(table_kind(3).dataset, Dataset::VkLike);
        assert!(!table_kind(3).exact);
        assert!(table_kind(8).exact);
        assert_eq!(table_kind(9).dataset, Dataset::Uniform);
        assert!(table_kind(10).same_category);
    }

    #[test]
    #[should_panic(expected = "not a couple table")]
    fn table_kind_rejects_out_of_range() {
        let _ = table_kind(11);
    }

    #[test]
    fn couple_table_produces_ten_rows() {
        let report = couple_table(4, tiny_cfg());
        assert_eq!(report.rows.len(), 10);
        for row in &report.rows {
            assert_eq!(row.cells.len(), 3);
            assert!((1..=10).contains(&row.cid));
            for cell in &row.cells {
                assert!(cell.measured_similarity_pct >= 0.0);
                assert!(cell.measured_similarity_pct <= 100.0);
            }
        }
        let md = report.to_markdown();
        assert!(md.contains("ex-minmax"));
    }

    #[test]
    fn table2_lists_all_couples() {
        let md = table2();
        for c in &COUPLES {
            assert!(md.contains(c.name_b), "missing couple {}", c.cid);
        }
    }

    #[test]
    fn run_parallel_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_parallel(7, &items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
