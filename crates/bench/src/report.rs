//! Report types: measured cells, paper-vs-measured rows, Markdown and
//! JSON rendering.

use serde::{Deserialize, Serialize};

/// One measured method-on-couple cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredCell {
    /// Method name (`ap-minmax`, ...).
    pub method: String,
    /// Measured similarity percentage.
    pub similarity_pct: f64,
    /// Measured wall-clock seconds.
    pub seconds: f64,
    /// Matched one-to-one pairs.
    pub matched: usize,
    /// `|B|` actually joined (scaled).
    pub b_size: usize,
    /// `|A|` actually joined (scaled).
    pub a_size: usize,
    /// Full d-dimensional comparisons executed.
    pub full_comparisons: u64,
    /// Raw event counter line (diagnostics).
    pub events: String,
}

/// One paper-vs-measured comparison cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonCell {
    pub method: String,
    pub paper_similarity_pct: f64,
    pub paper_seconds: f64,
    pub measured_similarity_pct: f64,
    pub measured_seconds: f64,
}

/// One couple row in a reproduced table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    pub cid: u8,
    pub label: String,
    pub b_size: usize,
    pub a_size: usize,
    pub cells: Vec<ComparisonCell>,
}

/// A fully reproduced table, ready to render.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableReport {
    /// e.g. "table3".
    pub id: String,
    /// Human title (mirrors the paper's caption).
    pub title: String,
    /// Scale divisor the run used.
    pub scale: u32,
    /// Seed the generators used.
    pub seed: u64,
    pub rows: Vec<ComparisonRow>,
    /// Free-form notes (calibration details, caveats).
    pub notes: Vec<String>,
}

impl TableReport {
    /// Render as a GitHub-flavoured Markdown table with one
    /// `similarity (time)` column per method, paper value beside measured.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out, "scale = 1/{}, seed = {:#x}\n", self.scale, self.seed);
        if let Some(first) = self.rows.first() {
            let mut header = String::from("| cID | couple | size_B | size_A |");
            let mut sep = String::from("|---|---|---|---|");
            for c in &first.cells {
                let _ = write!(header, " {} paper | {} measured |", c.method, c.method);
                sep.push_str("---|---|");
            }
            let _ = writeln!(out, "{header}");
            let _ = writeln!(out, "{sep}");
            for row in &self.rows {
                let _ = write!(
                    out,
                    "| {} | {} | {} | {} |",
                    row.cid, row.label, row.b_size, row.a_size
                );
                for c in &row.cells {
                    let _ = write!(
                        out,
                        " {:.2}% ({:.0} s) | {:.2}% ({:.3} s) |",
                        c.paper_similarity_pct,
                        c.paper_seconds,
                        c.measured_similarity_pct,
                        c.measured_seconds
                    );
                }
                let _ = writeln!(out);
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

/// Crash-safe report persistence: write through a same-directory temp
/// file, fsync, and rename, so a benchmark killed mid-write never
/// leaves a torn `BENCH_*.json` / `.md` artifact for CI (or a human)
/// to misread as a complete run.
pub fn write_report_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    csj_durability::atomic::write_atomic(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableReport {
        TableReport {
            id: "table3".into(),
            title: "Approximate methods on VK".into(),
            scale: 32,
            seed: 7,
            rows: vec![ComparisonRow {
                cid: 1,
                label: "Restaurants | Food_recipes".into(),
                b_size: 3411,
                a_size: 3625,
                cells: vec![ComparisonCell {
                    method: "ap-minmax".into(),
                    paper_similarity_pct: 20.58,
                    paper_seconds: 116.0,
                    measured_similarity_pct: 20.4,
                    measured_seconds: 0.4,
                }],
            }],
            notes: vec!["sizes scaled by 1/32".into()],
        }
    }

    #[test]
    fn markdown_contains_paper_and_measured() {
        let md = sample().to_markdown();
        assert!(md.contains("table3"));
        assert!(md.contains("20.58%"));
        assert!(md.contains("20.40%"));
        assert!(md.contains("ap-minmax paper"));
        assert!(md.contains("> sizes scaled"));
    }

    #[test]
    fn json_roundtrip() {
        let json = sample().to_json();
        if json == "null" {
            // Offline serde stub: derived serialization is compile-only.
            return;
        }
        // Round-trip through `Value` so the assertion also works where
        // typed deserialization is unavailable.
        let back: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back["rows"][0]["cells"][0]["method"].as_str(),
            Some("ap-minmax")
        );
        assert_eq!(back["scale"].as_u64(), Some(32));
        assert_eq!(back["rows"][0]["b_size"].as_u64(), Some(3411));
    }

    #[test]
    fn atomic_report_write_replaces_without_droppings() {
        let dir = std::env::temp_dir().join(format!("csj-bench-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table3.json");
        write_report_atomic(&path, &sample().to_json()).unwrap();
        write_report_atomic(&path, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "no temp files left behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
