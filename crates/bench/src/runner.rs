//! Joins one materialised couple with one method and captures the cell.

use std::sync::{Arc, OnceLock};

use csj_core::{run, CsjMethod, CsjOptions};
use csj_data::pairs::CouplePair;
use csj_obs::{Counter, LatencyHistogram, MetricsRegistry, MetricsSnapshot};

use crate::report::MeasuredCell;

/// Harness-wide join metrics: every [`measure`] call feeds one
/// per-method counter and latency histogram, so a full table run
/// leaves behind a machine-readable latency profile
/// (`BENCH_<timestamp>.json` written by the `tables` binary).
pub struct BenchObs {
    registry: MetricsRegistry,
    joins: Vec<Arc<Counter>>,
    latency: Vec<Arc<LatencyHistogram>>,
}

impl BenchObs {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let joins = CsjMethod::ALL
            .iter()
            .map(|m| {
                registry.counter(
                    "csj_bench_joins_total",
                    "Joins measured by the bench harness, by method.",
                    vec![("method", m.name().to_string())],
                )
            })
            .collect();
        let latency = CsjMethod::ALL
            .iter()
            .map(|m| {
                registry.latency(
                    "csj_bench_join_latency_seconds",
                    "Measured join wall-clock latency, by method.",
                    vec![("method", m.name().to_string())],
                )
            })
            .collect();
        Self {
            registry,
            joins,
            latency,
        }
    }

    fn on_measure(&self, method: CsjMethod, elapsed: std::time::Duration) {
        let idx = CsjMethod::ALL
            .iter()
            .position(|&m| m == method)
            .expect("method in ALL");
        self.joins[idx].inc();
        self.latency[idx].observe(elapsed);
    }

    /// Snapshot of everything measured so far in this process.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// The process-wide bench metrics collector.
pub fn bench_obs() -> &'static BenchObs {
    static OBS: OnceLock<BenchObs> = OnceLock::new();
    OBS.get_or_init(BenchObs::new)
}

/// Global harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Divisor on the paper's community sizes.
    pub scale: u32,
    /// Base RNG seed for all generators.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scale: 32,
            seed: 0xC5A0_2024,
        }
    }
}

impl RunConfig {
    /// The corresponding dataset build options.
    pub fn build_options(&self) -> csj_data::pairs::BuildOptions {
        csj_data::pairs::BuildOptions {
            scale: self.scale,
            seed: self.seed,
        }
    }
}

/// The CSJ options a couple should be joined with (paper parameters plus
/// the couple's dataset-specific normalisation divisor).
pub fn options_for(pair: &CouplePair) -> CsjOptions {
    let mut opts = CsjOptions::new(pair.eps);
    opts.superego.max_value = Some(pair.superego_max_value);
    opts
}

/// Run `method` on `pair` and capture similarity, runtime and diagnostics.
pub fn measure(pair: &CouplePair, method: CsjMethod) -> MeasuredCell {
    let opts = options_for(pair);
    let outcome = run(method, &pair.b, &pair.a, &opts)
        .expect("generated couples satisfy the CSJ constraints");
    bench_obs().on_measure(method, outcome.elapsed);
    MeasuredCell {
        method: method.name().to_string(),
        similarity_pct: outcome.similarity.percent(),
        seconds: outcome.elapsed.as_secs_f64(),
        matched: outcome.similarity.matched,
        b_size: pair.b.len(),
        a_size: pair.a.len(),
        full_comparisons: outcome.events.full_comparisons(),
        events: format!("{}", outcome.events),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_data::pairs::{build_couple, BuildOptions, Dataset};
    use csj_data::COUPLES;

    #[test]
    fn measure_produces_consistent_cell() {
        let pair = build_couple(
            &COUPLES[0],
            Dataset::VkLike,
            BuildOptions {
                scale: 1024,
                seed: 42,
            },
        );
        let cell = measure(&pair, CsjMethod::ExMinMax);
        assert_eq!(cell.method, "ex-minmax");
        assert!(cell.similarity_pct >= 0.0 && cell.similarity_pct <= 100.0);
        assert_eq!(cell.b_size, pair.b.len());
        assert_eq!(
            cell.matched as f64 / cell.b_size as f64 * 100.0,
            cell.similarity_pct
        );
    }

    #[test]
    fn exact_dominates_approximate_on_same_pair() {
        let pair = build_couple(
            &COUPLES[10],
            Dataset::VkLike,
            BuildOptions {
                scale: 512,
                seed: 7,
            },
        );
        let ap = measure(&pair, CsjMethod::ApMinMax);
        let ex = measure(&pair, CsjMethod::ExMinMax);
        assert!(ex.similarity_pct >= ap.similarity_pct - 1e-9);
    }
}
