//! # csj-bench — the experiment harness
//!
//! Reproduces every table of the paper's evaluation section (Tables 1–11)
//! at a configurable scale, printing **paper vs measured** for each cell,
//! and hosts the Criterion micro/ablation benches.
//!
//! Entry point: the `tables` binary —
//!
//! ```text
//! cargo run -p csj-bench --release --bin tables -- all --scale 32
//! ```
//!
//! writes Markdown + JSON reports under `EXPERIMENTS-data/`.

pub mod report;
pub mod runner;
pub mod tables;

pub use report::{MeasuredCell, TableReport};
pub use runner::{measure, RunConfig};
