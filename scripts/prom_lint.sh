#!/bin/sh
# prom_lint.sh — validate a Prometheus 0.0.4 text exposition on stdin.
#
# Checks (no external deps beyond POSIX awk):
#   * every sample belongs to a metric family announced by `# TYPE`;
#   * every `# TYPE` is preceded by a `# HELP` for the same family;
#   * the type is one of counter|gauge|histogram|summary|untyped;
#   * sample lines parse as  name{labels} value  with a numeric value;
#   * every histogram family exposes `_bucket` samples including an
#     `le="+Inf"` bucket, plus `_sum` and `_count`;
#   * families with a contract-fixed type carry it: every `csj_slo_*`
#     family must be a gauge (burn rates and fractions are
#     instantaneous evaluations, never monotonic), `*_total` families
#     must be counters, and the `csj_shard_*` coverage families are
#     pinned (fate counters end in `_total`; the only non-counter is
#     the `csj_shard_latency_seconds` histogram);
#   * at least one metric family is present (an empty exposition is a
#     wiring bug, not a clean bill of health).
#
# Usage:  csj stats --format prom ... | scripts/prom_lint.sh
# Exits non-zero with one diagnostic per violation.
set -eu

awk '
function fail(msg) { print "prom_lint: line " NR ": " msg > "/dev/stderr"; bad = 1 }
function base(n) { sub(/_(bucket|sum|count)$/, "", n); return n }

/^$/ { next }

/^# HELP / {
    split($0, a, " ")
    help[a[3]] = 1
    next
}

/^# TYPE / {
    split($0, a, " ")
    name = a[3]; kind = a[4]
    if (!(kind ~ /^(counter|gauge|histogram|summary|untyped)$/))
        fail("unknown type \"" kind "\" for " name)
    if (!(name in help))
        fail("# TYPE " name " without a preceding # HELP")
    if (name ~ /^csj_slo_/ && kind != "gauge")
        fail("SLO family " name " must be a gauge, got " kind)
    if (name ~ /_total$/ && kind != "counter")
        fail(name " ends in _total but is typed " kind)
    if (name ~ /^csj_shard_/) {
        if (name == "csj_shard_latency_seconds" && kind != "histogram")
            fail("shard family " name " must be a histogram, got " kind)
        else if (name != "csj_shard_latency_seconds" && !(name ~ /_total$/))
            fail("shard family " name " must be a _total counter or the latency histogram")
    }
    type[name] = kind
    families++
    next
}

/^#/ { next }  # other comments are legal

{
    # Sample line:  name{labels} value   or   name value
    if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/)) {
        fail("unparseable sample: " $0)
        next
    }
    name = substr($0, 1, RLENGTH)
    rest = substr($0, RLENGTH + 1)
    if (rest ~ /^\{/) {
        if (!match(rest, /^\{[^}]*\}/)) { fail("unclosed label set: " $0); next }
        labels = substr(rest, 2, RLENGTH - 2)
        rest = substr(rest, RLENGTH + 1)
    } else {
        labels = ""
    }
    sub(/^[ \t]+/, "", rest)
    if (!(rest ~ /^[-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?([ \t]+[0-9]+)?$/) \
        && !(rest ~ /^[-+]?(Inf|NaN)$/))
        fail("non-numeric value \"" rest "\" for " name)

    fam = name
    if (!(fam in type)) fam = base(name)
    if (!(fam in type)) { fail("sample " name " has no # TYPE"); next }

    if (type[fam] == "histogram") {
        if (name == fam "_bucket") {
            seen_bucket[fam] = 1
            if (labels ~ /le="\+Inf"/) seen_inf[fam] = 1
        }
        if (name == fam "_sum") seen_sum[fam] = 1
        if (name == fam "_count") seen_count[fam] = 1
    }
}

END {
    if (families == 0) { print "prom_lint: empty exposition (no # TYPE lines)" > "/dev/stderr"; bad = 1 }
    for (fam in type) {
        if (type[fam] != "histogram") continue
        if (!(fam in seen_bucket)) { print "prom_lint: histogram " fam " has no _bucket samples" > "/dev/stderr"; bad = 1 }
        else if (!(fam in seen_inf)) { print "prom_lint: histogram " fam " is missing the le=\"+Inf\" bucket" > "/dev/stderr"; bad = 1 }
        if (!(fam in seen_sum)) { print "prom_lint: histogram " fam " has no _sum sample" > "/dev/stderr"; bad = 1 }
        if (!(fam in seen_count)) { print "prom_lint: histogram " fam " has no _count sample" > "/dev/stderr"; bad = 1 }
    }
    if (bad) exit 1
    print "prom_lint: OK (" families " metric families)"
}
'
