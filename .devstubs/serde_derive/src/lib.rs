//! Offline derive stubs: emit empty `Serialize`/`Deserialize` impls for
//! the annotated type (no syn; finds the ident after `struct`/`enum`).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => {}
        }
    }
    panic!("derive stub: no struct/enum name found");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
