//! Offline functional mini-`proptest`: deterministic random sampling, no
//! shrinking. Implements exactly the API subset this workspace's property
//! tests use (proptest! macro with `pat in strategy` / `ident: type`
//! params, range strategies, tuples, Just, collection::vec, num::*::ANY,
//! sample::select, prop_map, prop_flat_map, prop_oneof!, prop_assert*).
//! Signatures are kept call-compatible with real proptest 1.x so code
//! written against this stub compiles unchanged against the real crate.

pub mod test_runner {
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    pub use Config as ProptestConfig;

    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            Self {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[idx].sample(rng)
        }
    }

    /// Minimal regex-string strategy: supports `[class]{min,max}` patterns
    /// (the only form used in this workspace); anything else samples as the
    /// literal pattern text.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let Some((chars, lo, hi)) = parse_class_repeat(self) else {
                return self.to_string();
            };
            let span = (hi - lo + 1) as u64;
            let len = lo + (rng.next_u64() % span) as usize;
            (0..len)
                .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = counts.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        if lo > hi {
            return None;
        }
        let mut chars = Vec::new();
        let cls: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cls.len() {
            if i + 2 < cls.len() && cls[i + 1] == '-' {
                for c in cls[i]..=cls[i + 2] {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(cls[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod num {
    macro_rules! any_int_module {
        ($($m:ident $t:ty),*) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    any_int_module!(u8 u8, u16 u16, u32 u32, u64 u64, usize usize, i32 i32, i64 i64);
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone + std::fmt::Debug + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        fn sample_any(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample_any(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn sample_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    #[derive(Debug, Clone, Copy)]
    pub struct AnyOf<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> AnyOf<T> {
        AnyOf(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_any(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::{bool, collection, num, sample};
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $crate::__proptest_bind! { __proptest_rng, $body, $($params)* }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block,) => { $body };
    ($rng:ident, $body:block, $pat:pat in $strat:expr, $($rest:tt)+) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $body, $($rest)+ }
    }};
    ($rng:ident, $body:block, $pat:pat in $strat:expr $(,)?) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident, $body:block, $id:ident: $ty:ty, $($rest:tt)+) => {{
        let $id = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind! { $rng, $body, $($rest)+ }
    }};
    ($rng:ident, $body:block, $id:ident: $ty:ty $(,)?) => {{
        let $id = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $body
    }};
}
