//! Offline compile-only stand-in for `serde`: marker traits plus derive
//! macros that emit empty impls. Code compiles; runtime serialisation
//! through `serde_json` stubs out (see that crate's notes).

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    /// Stub hook used by the offline `serde_json` stand-in.
    fn __stub_json(&self) -> String {
        String::from("null")
    }
}

pub trait Deserialize<'de>: Sized {
    /// Stub hook used by the offline `serde_json` stand-in; only its
    /// `Value` type overrides this with a real parser.
    fn __stub_from_json(_s: &str) -> Option<Self> {
        None
    }
}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
