//! Offline functional stand-in for `criterion` 0.5: compiles the bench
//! targets and runs each benchmark a handful of times printing rough
//! timings (no statistics, no reports).

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self(param.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

#[derive(Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        run_bench(&id.to_string(), f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        run_bench(&format!("{}/{}", self.name, id), f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    // Warm-up + calibration: target ~30ms per benchmark.
    f(&mut b);
    let per_iter = b.elapsed_ns.max(1.0);
    b.iters = ((30.0e6 / per_iter) as u64).clamp(1, 1000);
    f(&mut b);
    println!(
        "bench {label}: {:.0} ns/iter ({} iters)",
        b.elapsed_ns / b.iters as f64,
        b.iters
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
