//! Offline functional stand-in for the `bytes` 1.x API surface this
//! workspace uses (BytesMut + BufMut put_*_le + Buf get_*_le).

#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}
