//! Offline functional stand-in for the `rand` 0.8 API surface this
//! workspace uses (StdRng + seed_from_u64 + gen/gen_bool/gen_range).
//! Deterministic splitmix64/xorshift generator; NOT the real StdRng
//! stream, but stable across runs in this environment.

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            Self { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_state(seed ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

pub trait Standard<T> {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> T;
}

pub struct StdDist;
impl Standard<f64> for StdDist {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard<f32> for StdDist {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}
impl Standard<u32> for StdDist {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}
impl Standard<u64> for StdDist {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard<bool> for StdDist {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        <StdDist as Standard<f64>>::standard(self) < p
    }

    fn gen<T>(&mut self) -> T
    where
        Self: Sized,
        StdDist: Standard<T>,
    {
        <StdDist as Standard<T>>::standard(self)
    }
}

impl<R: RngCore> Rng for R {}
