//! Offline stand-in for `crossbeam` — declared but unused in this
//! workspace, so an empty lib satisfies resolution.
