//! Offline stand-in for `serde_json`: a real `Value` + `json!` macro with
//! working pretty-printing (the CLI's --json path), while generic
//! `to_string_pretty` over derived types degrades to the stub impl and
//! `from_str` always errors (don't run roundtrip tests offline).

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => out.push_str(&format!("{v}")),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i64) }
        }
    )*};
}
impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl serde::Serialize for Value {
    fn __stub_json(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn __stub_from_json(s: &str) -> Option<Self> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_value(&mut self) -> Option<Value> {
        self.skip_ws();
        match *self.bytes.get(self.pos)? {
            b'n' => self.parse_lit("null", Value::Null),
            b't' => self.parse_lit("true", Value::Bool(true)),
            b'f' => self.parse_lit("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::String),
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Option<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(v)
        } else {
            None
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(self.bytes.get(self.pos + 1..self.pos + 5)?)
                                    .ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Option<Value> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if let Ok(i) = text.parse::<i64>() {
            Some(Value::Int(i))
        } else {
            text.parse::<f64>().ok().map(Value::Float)
        }
    }

    fn parse_object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(Value::Object(map));
        }
    }

    fn parse_array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(Value::Array(items));
        }
    }
}

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.__stub_json())
}

pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.__stub_json())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    T::__stub_from_json(s).ok_or_else(|| {
        Error("offline serde_json stub can only deserialize Value".to_string())
    })
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::<String, $crate::Value>::new();
        $crate::json_object!(map; $($body)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object!($map; $($rest)*);
    };
    ($map:ident; $key:literal : { $($inner:tt)* } $(,)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
    };
    ($map:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
        $crate::json_object!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $val:expr) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
    };
}
