//! # csj — Community Similarity based on User Profile Joins
//!
//! Facade crate re-exporting the whole CSJ stack (see the workspace
//! README for the architecture):
//!
//! * `core` ([`csj_core`]) — the CSJ problem, the MinMax encoding and the
//!   eight join methods (the paper's six plus the hybrid pair).
//! * `matching` ([`csj_matching`]) — one-to-one matchers (CSF, greedy,
//!   Kuhn, Hopcroft–Karp).
//! * `ego` ([`csj_ego`]) — the SuperEGO substrate (EGO order, pruning
//!   strategy, dimension reordering, recursive join).
//! * `data` ([`csj_data`]) — dataset generators calibrated to the paper's
//!   published corpus shape, plus the paper's experiment constants.
//! * `engine` ([`csj_engine`]) — a multi-community service layer with the
//!   paper's screen-then-refine pipeline, caching and top-k queries.
//!
//! ## Quick start
//!
//! ```
//! use csj::prelude::*;
//!
//! // The paper's Section 3 example: d = 3 categories, eps = 1.
//! let b = Community::from_rows("B", 3, vec![
//!     (1u64, vec![3u32, 4, 2]), // b1: Music 3, Sport 4, Education 2
//!     (2, vec![2, 2, 3]),
//! ]).unwrap();
//! let a = Community::from_rows("A", 3, vec![
//!     (10u64, vec![2u32, 3, 5]),
//!     (11, vec![2, 3, 1]),
//!     (12, vec![3, 3, 3]),
//! ]).unwrap();
//!
//! let outcome = run(CsjMethod::ExMinMax, &b, &a, &CsjOptions::new(1)).unwrap();
//! assert_eq!(outcome.similarity.percent(), 100.0);
//! ```

pub use csj_core as core;
pub use csj_data as data;
pub use csj_ego as ego;
pub use csj_engine as engine;
pub use csj_matching as matching;

/// Everything most applications need, in one import.
pub mod prelude {
    pub use csj_core::algorithms::orient;
    pub use csj_core::{
        run, Community, CsjError, CsjMethod, CsjOptions, JoinOutcome, MatcherKind, Similarity,
        UserId,
    };
    pub use csj_data::pairs::{build_couple, BuildOptions, CouplePair, Dataset};
    pub use csj_data::uniform::{UniformConfig, UniformGenerator};
    pub use csj_data::vklike::{VkLikeConfig, VkLikeGenerator};
    pub use csj_data::Category;
    pub use csj_engine::{
        Budget, CommunityHandle, CsjEngine, EngineConfig, EngineError, ExhaustReason, PairScore,
        Partial,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_stack() {
        let b = Community::new("b", 2);
        assert_eq!(b.d(), 2);
        assert_eq!(CsjMethod::ExMinMax.name(), "ex-minmax");
        assert_eq!(MatcherKind::Csf.name(), "csf");
        assert_eq!(Category::ALL.len(), 27);
    }
}
